package format

import (
	"errors"
	"fmt"
	"sort"

	"waco/internal/tensor"
)

// ErrStorageLimit reports that assembling a tensor in a format would exceed
// the caller's storage budget (e.g. a huge Uncompressed inner level below a
// Compressed level). The WACO data-generation pipeline treats such formats
// the way the paper treats >1-minute configurations: excluded from the
// dataset.
var ErrStorageLimit = errors.New("format: storage limit exceeded")

// IsStorageLimit reports whether err is (or wraps) ErrStorageLimit.
func IsStorageLimit(err error) bool { return errors.Is(err, ErrStorageLimit) }

// StoredLevel is one assembled level of a coordinate hierarchy.
type StoredLevel struct {
	Kind   LevelKind
	Extent int32 // coordinate extent of this level
	// PosCount is the number of positions (nodes) at this level; the next
	// level has PosCount parents.
	PosCount int64
	// Pos/Crd are the Compressed segment arrays: children of parent p occupy
	// Crd[Pos[p]:Pos[p+1]]. Nil for Uncompressed levels.
	Pos []int64
	Crd []int32
}

// Stored is a sparse tensor assembled into a concrete Format: the coordinate
// hierarchy plus the values array. Trailing Uncompressed levels materialize
// explicit zeros, exactly like TACO's dense blocks.
type Stored struct {
	Fmt    Format
	Dims   []int
	Levels []StoredLevel
	Vals   []float32
}

// AssembleOptions bounds assembly.
type AssembleOptions struct {
	// MaxEntries caps the length of any single positions/values array.
	// Zero means DefaultMaxEntries.
	MaxEntries int64
}

// DefaultMaxEntries is the default per-array assembly budget (64Mi entries,
// 256 MiB of float32 values).
const DefaultMaxEntries = int64(1) << 26

// Assemble stores a COO tensor in the given format. The COO is sorted as a
// side effect. It returns ErrStorageLimit if any level's position space or
// the values array would exceed the budget.
func Assemble(c *tensor.COO, f Format, opts AssembleOptions) (*Stored, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if f.Order() != c.Order() {
		return nil, fmt.Errorf("format: order-%d format for order-%d tensor", f.Order(), c.Order())
	}
	limit := opts.MaxEntries
	if limit <= 0 {
		limit = DefaultMaxEntries
	}
	nnz := c.NNZ()
	nLev := len(f.Levels)

	// Per-level coordinates for every nonzero.
	lc := make([][]int32, nLev)
	for l, lv := range f.Levels {
		lc[l] = make([]int32, nnz)
		split := f.Splits[lv.Mode]
		src := c.Coords[lv.Mode]
		if lv.Inner {
			for p, x := range src {
				lc[l][p] = x % split
			}
		} else {
			for p, x := range src {
				lc[l][p] = x / split
			}
		}
	}

	// Sort nonzeros lexicographically by level coordinates in level order.
	idx := make([]int32, nnz)
	for p := range idx {
		idx[p] = int32(p)
	}
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := idx[a], idx[b]
		for l := 0; l < nLev; l++ {
			ca, cb := lc[l][pa], lc[l][pb]
			if ca != cb {
				return ca < cb
			}
		}
		return false
	})

	st := &Stored{
		Fmt:    f.Clone(),
		Dims:   append([]int(nil), c.Dims...),
		Levels: make([]StoredLevel, nLev),
	}

	// pos[k] is the position of sorted-nonzero k at the level just built.
	pos := make([]int64, nnz)
	parentCount := int64(1)
	for l := range f.Levels {
		extent := f.LevelExtent(l, c.Dims)
		sl := &st.Levels[l]
		sl.Kind = f.Levels[l].Kind
		sl.Extent = extent
		switch sl.Kind {
		case Uncompressed:
			pc := parentCount * int64(extent)
			if pc > limit {
				return nil, fmt.Errorf("%w: level %d needs %d positions (limit %d)", ErrStorageLimit, l, pc, limit)
			}
			for k := 0; k < nnz; k++ {
				pos[k] = pos[k]*int64(extent) + int64(lc[l][idx[k]])
			}
			parentCount = pc
		case Compressed:
			if parentCount+1 > limit {
				return nil, fmt.Errorf("%w: level %d needs %d pos entries (limit %d)", ErrStorageLimit, l, parentCount+1, limit)
			}
			sl.Pos = make([]int64, parentCount+1)
			sl.Crd = make([]int32, 0, nnz)
			var nPos int64
			prevParent := int64(-1)
			var prevCoord int32
			for k := 0; k < nnz; k++ {
				coord := lc[l][idx[k]]
				parent := pos[k]
				if parent != prevParent || coord != prevCoord || nPos == 0 {
					sl.Crd = append(sl.Crd, coord)
					sl.Pos[parent+1] = nPos + 1
					nPos++
					prevParent, prevCoord = parent, coord
				}
				pos[k] = nPos - 1
			}
			sl.PosCount = nPos
			// Carry forward: Pos[p+1] = 0 means "same as previous".
			for p := int64(1); p < parentCount+1; p++ {
				if sl.Pos[p] < sl.Pos[p-1] {
					sl.Pos[p] = sl.Pos[p-1]
				}
			}
			parentCount = nPos
			continue
		}
		sl.PosCount = parentCount
	}

	if parentCount > limit {
		return nil, fmt.Errorf("%w: values array needs %d entries (limit %d)", ErrStorageLimit, parentCount, limit)
	}
	st.Vals = make([]float32, parentCount)
	for k := 0; k < nnz; k++ {
		st.Vals[pos[k]] = c.Vals[idx[k]]
	}
	return st, nil
}

// NNZStored returns the length of the values array, i.e. stored entries
// including explicit zeros inside dense blocks.
func (s *Stored) NNZStored() int { return len(s.Vals) }

// Bytes estimates the storage footprint in bytes: values plus Compressed
// pos/crd arrays. This feeds the format-conversion cost accounting of the
// end-to-end experiments (Table 8).
func (s *Stored) Bytes() int64 {
	b := int64(len(s.Vals)) * 4
	for _, l := range s.Levels {
		b += int64(len(l.Pos))*8 + int64(len(l.Crd))*4
	}
	return b
}

// ToCOO reconstructs coordinate form by walking the full hierarchy. Entries
// whose stored value is exactly zero are dropped (indistinguishable from
// dense-block padding). Used for testing and format conversion.
func (s *Stored) ToCOO() *tensor.COO {
	out := tensor.NewCOO(s.Dims, len(s.Vals))
	coords := make([]int32, len(s.Levels))
	orig := make([]int32, s.Fmt.Order())
	var walk func(level int, parent int64)
	walk = func(level int, parent int64) {
		if level == len(s.Levels) {
			v := s.Vals[parent]
			if v == 0 {
				return
			}
			for m := range orig {
				orig[m] = 0
			}
			for l, lv := range s.Fmt.Levels {
				if lv.Inner {
					orig[lv.Mode] += coords[l]
				} else {
					orig[lv.Mode] += coords[l] * s.Fmt.Splits[lv.Mode]
				}
			}
			out.Append(v, orig...)
			return
		}
		lv := &s.Levels[level]
		switch lv.Kind {
		case Uncompressed:
			for x := int32(0); x < lv.Extent; x++ {
				coords[level] = x
				walk(level+1, parent*int64(lv.Extent)+int64(x))
			}
		case Compressed:
			for p := lv.Pos[parent]; p < lv.Pos[parent+1]; p++ {
				coords[level] = lv.Crd[p]
				walk(level+1, p)
			}
		}
	}
	walk(0, 0)
	out.SortRowMajor()
	return out
}

// Locate walks the full hierarchy to the values position of the entry with
// the given original coordinates, reporting whether the coordinate path
// exists in storage. Compressed levels are binary-searched; Uncompressed
// levels are computed arithmetically.
func (s *Stored) Locate(coords []int32) (int64, bool) {
	var pos int64
	for l, lv := range s.Fmt.Levels {
		x := coords[lv.Mode]
		split := s.Fmt.Splits[lv.Mode]
		var coord int32
		if lv.Inner {
			coord = x % split
		} else {
			coord = x / split
		}
		sl := &s.Levels[l]
		switch sl.Kind {
		case Uncompressed:
			if coord >= sl.Extent {
				return 0, false
			}
			pos = pos*int64(sl.Extent) + int64(coord)
		case Compressed:
			p, ok := sl.LocateC(pos, coord)
			if !ok {
				return 0, false
			}
			pos = p
		}
	}
	return pos, true
}

// LocateC binary-searches for coord among the children of parent in a
// Compressed level, returning the child position and whether it exists.
func (l *StoredLevel) LocateC(parent int64, coord int32) (int64, bool) {
	lo, hi := l.Pos[parent], l.Pos[parent+1]
	for lo < hi {
		mid := (lo + hi) / 2
		c := l.Crd[mid]
		if c == coord {
			return mid, true
		}
		if c < coord {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return 0, false
}
