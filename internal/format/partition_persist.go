package format

import (
	"encoding/binary"
	"fmt"
	"io"

	"encoding/gob"
)

// partMagic identifies a serialized Partitioned tensor; partVersion is
// bumped on any incompatible layout change so stale artifacts fail loudly
// instead of deserializing garbage (same discipline as the HNSW artifacts).
const (
	partMagic   = "WACOPART"
	partVersion = uint32(1)
)

// maxPartRegions bounds the region count a loader will accept; a Rule can
// produce at most one region per class.
const maxPartRegions = 8

// partDisk is the on-disk mirror of Partitioned.
type partDisk struct {
	Dims    []int
	Rule    Rule
	Regions []Region
}

// Save writes the partitioned tensor in a versioned binary format readable
// by LoadPartitioned. Identical tensors serialize to identical bytes.
func (p *Partitioned) Save(w io.Writer) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if _, err := io.WriteString(w, partMagic); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, partVersion); err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(partDisk{Dims: p.Dims, Rule: p.Rule, Regions: p.Regions})
}

// LoadPartitioned reconstructs a partitioned tensor written by Save,
// rejecting malformed inputs — bad region boundaries, overlapping or ragged
// position arrays, out-of-extent coordinates — with an error rather than
// deserializing a hierarchy that would fault at kernel time.
func LoadPartitioned(r io.Reader) (*Partitioned, error) {
	magic := make([]byte, len(partMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("format: reading magic: %w", err)
	}
	if string(magic) != partMagic {
		return nil, fmt.Errorf("format: bad magic %q (not a partitioned tensor file)", magic)
	}
	var version uint32
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("format: reading version: %w", err)
	}
	if version != partVersion {
		return nil, fmt.Errorf("format: partitioned version %d, this build reads %d", version, partVersion)
	}
	var d partDisk
	if err := gob.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("format: decoding partitioned tensor: %w", err)
	}
	if len(d.Regions) > maxPartRegions {
		return nil, fmt.Errorf("format: %d regions exceeds limit %d", len(d.Regions), maxPartRegions)
	}
	p := &Partitioned{Dims: d.Dims, Rule: d.Rule, Regions: d.Regions}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
