package format

import (
	"fmt"
	"math"

	"waco/internal/tensor"
)

// This file implements composable format decomposition (SparseTIR-style): a
// matrix is split by a deterministic Rule into disjoint regions — dense
// blocks, heavy rows, and the remainder tail — and each region is assembled
// into its own Stored hierarchy, so a kernel can run the best plan per region
// and sum partial results. Every region reuses the existing level machinery;
// the region archetypes are just Formats (BCSR-like U/U blocks, ELL-like
// fixed-width chunks, CSR-like tail).

// RegionClass names the region archetypes of a decomposition, in canonical
// region order.
type RegionClass uint8

const (
	// RegionBlocks holds nonzeros inside sufficiently filled BlockSize x
	// BlockSize tiles, stored with dense U/U block levels (BCSR-like).
	RegionBlocks RegionClass = iota
	// RegionHeavy holds nonzeros of unusually heavy rows, stored as
	// fixed-width ELL-like column chunks.
	RegionHeavy
	// RegionTail holds everything else, stored compressed (CSR-like by
	// default; schedules may override the tail format).
	RegionTail
)

func (c RegionClass) String() string {
	switch c {
	case RegionBlocks:
		return "blocks"
	case RegionHeavy:
		return "heavy"
	case RegionTail:
		return "tail"
	}
	return fmt.Sprintf("RegionClass(%d)", uint8(c))
}

// Rule is a deterministic decomposition rule for an order-2 sparse tensor.
// The zero Rule disables both extraction passes, leaving one tail region.
type Rule struct {
	// BlockSize is the dense-tile edge length; 0 disables block extraction.
	BlockSize int32
	// BlockFill is the minimum fraction of a tile's cells that must hold
	// nonzeros for the tile to join the blocks region.
	BlockFill float64
	// HeavyFactor extracts rows whose nonzero count is at least HeavyFactor
	// times the mean count over nonempty rows; 0 disables heavy-row
	// extraction.
	HeavyFactor float64
	// EllWidth is the column-chunk width of the heavy region's storage.
	EllWidth int32
}

// maxRuleExtent bounds rule geometry so decomposition arithmetic and the
// persisted form stay in range.
const maxRuleExtent = int32(1) << 20

// Validate rejects rules whose geometry cannot decompose deterministically.
func (r Rule) Validate() error {
	if r.BlockSize < 0 || r.BlockSize > maxRuleExtent {
		return fmt.Errorf("format: rule block size %d out of range", r.BlockSize)
	}
	if math.IsNaN(r.BlockFill) || r.BlockFill < 0 || r.BlockFill > 1 {
		return fmt.Errorf("format: rule block fill %v outside [0, 1]", r.BlockFill)
	}
	if math.IsNaN(r.HeavyFactor) || math.IsInf(r.HeavyFactor, 0) || r.HeavyFactor < 0 {
		return fmt.Errorf("format: rule heavy factor %v invalid", r.HeavyFactor)
	}
	if r.EllWidth < 0 || r.EllWidth > maxRuleExtent {
		return fmt.Errorf("format: rule ELL width %d out of range", r.EllWidth)
	}
	if r.HeavyFactor > 0 && r.EllWidth < 1 {
		return fmt.Errorf("format: rule extracts heavy rows but has ELL width %d", r.EllWidth)
	}
	return nil
}

// Classes returns the region classes the rule produces, in canonical order.
// The tail is always present; extraction regions appear even when they end
// up empty for a particular matrix, so a rule always yields the same region
// shape.
func (r Rule) Classes() []RegionClass {
	out := make([]RegionClass, 0, 3)
	if r.BlockSize > 0 {
		out = append(out, RegionBlocks)
	}
	if r.HeavyFactor > 0 {
		out = append(out, RegionHeavy)
	}
	return append(out, RegionTail)
}

// RegionFormat returns the archetype storage format for a region class under
// this rule: BCSR(B, B) for blocks, a fixed-width ELL-like format for heavy
// rows (compressed rows, compressed column chunks, dense width-W interiors),
// and CSR for the tail.
func (r Rule) RegionFormat(c RegionClass) Format {
	switch c {
	case RegionBlocks:
		b := r.BlockSize
		if b < 1 {
			b = 1
		}
		return BCSR(b, b)
	case RegionHeavy:
		w := r.EllWidth
		if w < 1 {
			w = 1
		}
		return Format{
			Splits: []int32{1, w},
			Levels: []Level{
				{Mode: 0, Kind: Compressed},
				{Mode: 1, Kind: Compressed},
				{Mode: 0, Inner: true, Kind: Uncompressed},
				{Mode: 1, Inner: true, Kind: Uncompressed},
			},
		}
	}
	return CSR()
}

// PartRegion is one coordinate-form region of a decomposed tensor.
type PartRegion struct {
	Class RegionClass
	COO   *tensor.COO
}

// Partition is a tensor decomposed into disjoint, complete coordinate
// regions: every source nonzero appears in exactly one region, with its
// value bit-identical. Regions keep the full tensor dims so per-region
// kernels address the same iteration space.
type Partition struct {
	Dims    []int
	Rule    Rule
	Regions []PartRegion
}

// Decompose splits an order-2 COO tensor by the rule. Heavy rows are
// extracted first (so a heavy row's dense tiles stay with the row), then
// sufficiently filled tiles among the remaining nonzeros, then the tail.
// The input is not modified. The decomposition is deterministic: identical
// inputs yield identical partitions.
func Decompose(c *tensor.COO, r Rule) (*Partition, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	if c.Order() != 2 {
		return nil, fmt.Errorf("format: decompose needs an order-2 tensor, got order %d", c.Order())
	}
	nnz := c.NNZ()
	rowsOf := c.Coords[0]
	colsOf := c.Coords[1]

	// Heavy-row pass: rows with nnz >= HeavyFactor * mean(nonempty rows).
	heavyRow := make(map[int32]bool)
	if r.HeavyFactor > 0 {
		rowNNZ := make(map[int32]int, 64)
		for _, i := range rowsOf {
			rowNNZ[i]++
		}
		if len(rowNNZ) > 0 {
			mean := float64(nnz) / float64(len(rowNNZ))
			cut := r.HeavyFactor * mean
			for i, n := range rowNNZ {
				if float64(n) >= cut {
					heavyRow[i] = true
				}
			}
		}
	}

	// Dense-tile pass over the nonzeros not claimed by heavy rows. A tile
	// qualifies when its fill (over its true area, clipped at the tensor
	// boundary) reaches BlockFill.
	type tileKey struct{ bi, bk int32 }
	denseTile := make(map[tileKey]bool)
	if r.BlockSize > 0 {
		b := r.BlockSize
		count := make(map[tileKey]int, 64)
		for p := 0; p < nnz; p++ {
			if heavyRow[rowsOf[p]] {
				continue
			}
			count[tileKey{rowsOf[p] / b, colsOf[p] / b}]++
		}
		for k, n := range count {
			bh := int64(b)
			if rem := int64(c.Dims[0]) - int64(k.bi)*int64(b); rem < bh {
				bh = rem
			}
			bw := int64(b)
			if rem := int64(c.Dims[1]) - int64(k.bk)*int64(b); rem < bw {
				bw = rem
			}
			area := bh * bw
			if area > 0 && float64(n) >= r.BlockFill*float64(area) {
				denseTile[k] = true
			}
		}
	}

	classes := r.Classes()
	byClass := make(map[RegionClass]*tensor.COO, len(classes))
	for _, cl := range classes {
		byClass[cl] = tensor.NewCOO(c.Dims, 0)
	}
	for p := 0; p < nnz; p++ {
		i, k := rowsOf[p], colsOf[p]
		cl := RegionTail
		switch {
		case heavyRow[i]:
			cl = RegionHeavy
		case r.BlockSize > 0 && denseTile[tileKey{i / r.BlockSize, k / r.BlockSize}]:
			cl = RegionBlocks
		}
		byClass[cl].Append(c.Vals[p], i, k)
	}

	pt := &Partition{Dims: append([]int(nil), c.Dims...), Rule: r}
	for _, cl := range classes {
		pt.Regions = append(pt.Regions, PartRegion{Class: cl, COO: byClass[cl]})
	}
	return pt, nil
}

// NNZ returns the total nonzeros across regions.
func (p *Partition) NNZ() int {
	total := 0
	for _, r := range p.Regions {
		total += r.COO.NNZ()
	}
	return total
}

// ToCOO concatenates the regions back into one row-major-sorted tensor.
// Values are copied bit-identically; a correct partition of a deduplicated
// tensor reassembles to exactly the source.
func (p *Partition) ToCOO() *tensor.COO {
	out := tensor.NewCOO(p.Dims, p.NNZ())
	coords := make([]int32, len(p.Dims))
	for _, r := range p.Regions {
		for i := 0; i < r.COO.NNZ(); i++ {
			for m := range coords {
				coords[m] = r.COO.Coords[m][i]
			}
			out.Append(r.COO.Vals[i], coords...)
		}
	}
	out.SortRowMajor()
	return out
}

// Region is one assembled region of a Partitioned tensor.
type Region struct {
	Class  RegionClass
	Stored *Stored
}

// Partitioned is a tensor stored as per-region coordinate hierarchies. The
// concatenation of the regions' values arrays is the partitioned analog of
// Stored.Vals: positions are addressed globally by offsetting each region's
// positions by the preceding regions' value counts (see Locate), which is
// what per-region SDDMM execution writes into.
type Partitioned struct {
	Dims    []int
	Rule    Rule
	Regions []Region
}

// Assemble stores each region of the partition in its archetype format.
// overrides, if non-nil, substitutes the format for a region class — the
// kernel layer uses this to store the tail in the SuperSchedule's AFormat.
// The per-array storage budget applies to each region individually.
func (p *Partition) Assemble(opts AssembleOptions, overrides map[RegionClass]Format) (*Partitioned, error) {
	out := &Partitioned{Dims: append([]int(nil), p.Dims...), Rule: p.Rule}
	for _, reg := range p.Regions {
		f, ok := overrides[reg.Class]
		if !ok {
			f = p.Rule.RegionFormat(reg.Class)
		}
		st, err := Assemble(reg.COO, f, opts)
		if err != nil {
			return nil, fmt.Errorf("format: assembling %v region: %w", reg.Class, err)
		}
		out.Regions = append(out.Regions, Region{Class: reg.Class, Stored: st})
	}
	return out, nil
}

// NNZStored returns the summed stored-entry count (padding included).
func (p *Partitioned) NNZStored() int {
	total := 0
	for _, r := range p.Regions {
		total += r.Stored.NNZStored()
	}
	return total
}

// Bytes returns the summed storage footprint.
func (p *Partitioned) Bytes() int64 {
	var total int64
	for _, r := range p.Regions {
		total += r.Stored.Bytes()
	}
	return total
}

// ToCOO merges the regions back to one row-major-sorted coordinate tensor,
// dropping explicit padding zeros (like Stored.ToCOO).
func (p *Partitioned) ToCOO() *tensor.COO {
	out := tensor.NewCOO(p.Dims, 0)
	coords := make([]int32, len(p.Dims))
	for _, r := range p.Regions {
		c := r.Stored.ToCOO()
		for i := 0; i < c.NNZ(); i++ {
			for m := range coords {
				coords[m] = c.Coords[m][i]
			}
			out.Append(c.Vals[i], coords...)
		}
	}
	out.SortRowMajor()
	return out
}

// Locate returns the global values position of the entry at the given
// original coordinates: the region-local position plus the value-array
// offsets of all preceding regions. Regions other than the one holding the
// entry can still locate the coordinate path — a dense U/U interior
// materializes padding at every in-block coordinate — so positions holding a
// nonzero value win, and a padding position is only returned when no region
// stores a nonzero there (true explicit zeros are indistinguishable from
// padding, exactly as in Stored.ToCOO).
func (p *Partitioned) Locate(coords []int32) (int64, bool) {
	var off int64
	fallback, found := int64(0), false
	for _, r := range p.Regions {
		if pos, ok := r.Stored.Locate(coords); ok {
			if r.Stored.Vals[pos] != 0 {
				return off + pos, true
			}
			if !found {
				fallback, found = off+pos, true
			}
		}
		off += int64(len(r.Stored.Vals))
	}
	return fallback, found
}

// Validate checks cross-region structural invariants plus each region's
// stored hierarchy.
func (p *Partitioned) Validate() error {
	if len(p.Dims) == 0 {
		return fmt.Errorf("format: partitioned tensor has no dims")
	}
	for _, d := range p.Dims {
		if d < 0 {
			return fmt.Errorf("format: partitioned dim %d < 0", d)
		}
	}
	if err := p.Rule.Validate(); err != nil {
		return err
	}
	if len(p.Regions) == 0 {
		return fmt.Errorf("format: partitioned tensor has no regions")
	}
	seen := make(map[RegionClass]bool, len(p.Regions))
	for _, r := range p.Regions {
		if r.Class > RegionTail {
			return fmt.Errorf("format: unknown region class %d", uint8(r.Class))
		}
		if seen[r.Class] {
			return fmt.Errorf("format: duplicate %v region", r.Class)
		}
		seen[r.Class] = true
		if r.Stored == nil {
			return fmt.Errorf("format: %v region has no storage", r.Class)
		}
		if err := r.Stored.Validate(); err != nil {
			return fmt.Errorf("format: %v region: %w", r.Class, err)
		}
		if len(r.Stored.Dims) != len(p.Dims) {
			return fmt.Errorf("format: %v region has order %d, partition has %d", r.Class, len(r.Stored.Dims), len(p.Dims))
		}
		for m, d := range r.Stored.Dims {
			if d != p.Dims[m] {
				return fmt.Errorf("format: %v region dim %d is %d, partition has %d", r.Class, m, d, p.Dims[m])
			}
		}
	}
	if !seen[RegionTail] {
		return fmt.Errorf("format: partitioned tensor has no tail region")
	}
	return nil
}

// Validate checks the structural invariants of an assembled hierarchy:
// level shapes consistent with the format, monotone position arrays, segment
// coordinates strictly increasing and in extent range, and a values array
// sized by the leaf position count. Assemble output always validates; the
// check guards hierarchies read back from disk.
func (s *Stored) Validate() error {
	if err := s.Fmt.Validate(); err != nil {
		return err
	}
	if len(s.Dims) != s.Fmt.Order() {
		return fmt.Errorf("format: stored has %d dims for an order-%d format", len(s.Dims), s.Fmt.Order())
	}
	if len(s.Levels) != len(s.Fmt.Levels) {
		return fmt.Errorf("format: stored has %d levels, format has %d", len(s.Levels), len(s.Fmt.Levels))
	}
	parentCount := int64(1)
	for l := range s.Levels {
		sl := &s.Levels[l]
		if sl.Kind != s.Fmt.Levels[l].Kind {
			return fmt.Errorf("format: stored level %d kind %v, format says %v", l, sl.Kind, s.Fmt.Levels[l].Kind)
		}
		if sl.Extent < 0 {
			return fmt.Errorf("format: stored level %d extent %d < 0", l, sl.Extent)
		}
		switch sl.Kind {
		case Uncompressed:
			if len(sl.Pos) != 0 || len(sl.Crd) != 0 {
				return fmt.Errorf("format: stored level %d is U but has pos/crd arrays", l)
			}
			parentCount *= int64(sl.Extent)
			if sl.PosCount != parentCount {
				return fmt.Errorf("format: stored level %d has pos count %d, want %d", l, sl.PosCount, parentCount)
			}
		case Compressed:
			if int64(len(sl.Pos)) != parentCount+1 {
				return fmt.Errorf("format: stored level %d has %d pos entries, want %d", l, len(sl.Pos), parentCount+1)
			}
			if sl.Pos[0] != 0 {
				return fmt.Errorf("format: stored level %d pos[0] = %d", l, sl.Pos[0])
			}
			for p := 1; p < len(sl.Pos); p++ {
				if sl.Pos[p] < sl.Pos[p-1] {
					return fmt.Errorf("format: stored level %d pos decreases at %d", l, p)
				}
			}
			last := sl.Pos[len(sl.Pos)-1]
			if int64(len(sl.Crd)) != last || sl.PosCount != last {
				return fmt.Errorf("format: stored level %d has %d coords, pos count %d, pos end %d", l, len(sl.Crd), sl.PosCount, last)
			}
			for p := 0; p+1 < len(sl.Pos); p++ {
				seg := sl.Crd[sl.Pos[p]:sl.Pos[p+1]]
				for i, crd := range seg {
					if crd < 0 || crd >= sl.Extent {
						return fmt.Errorf("format: stored level %d coord %d outside extent %d", l, crd, sl.Extent)
					}
					if i > 0 && crd <= seg[i-1] {
						return fmt.Errorf("format: stored level %d segment %d coords not increasing", l, p)
					}
				}
			}
			parentCount = last
		default:
			return fmt.Errorf("format: stored level %d has unknown kind %d", l, uint8(sl.Kind))
		}
	}
	if int64(len(s.Vals)) != parentCount {
		return fmt.Errorf("format: stored has %d values, leaf position count is %d", len(s.Vals), parentCount)
	}
	return nil
}
