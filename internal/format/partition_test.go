package format

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"waco/internal/generate"
	"waco/internal/tensor"
)

// randomRule draws a rule from the space of valid geometries, including the
// degenerate zero rule (tail only) and rules whose extraction passes match
// nothing.
func randomRule(rng *rand.Rand) Rule {
	var r Rule
	if rng.Intn(3) > 0 {
		r.BlockSize = []int32{2, 3, 4, 8, 16}[rng.Intn(5)]
		r.BlockFill = []float64{0.1, 0.25, 0.5, 0.75, 1.0}[rng.Intn(5)]
	}
	if rng.Intn(3) > 0 {
		r.HeavyFactor = []float64{0.5, 1, 2, 4, 16}[rng.Intn(5)]
		r.EllWidth = []int32{1, 2, 4, 8}[rng.Intn(4)]
	}
	return r
}

// randomSkewedCOO draws from generator families with genuinely different
// region structure so every rule archetype gets exercised.
func randomSkewedCOO(rng *rand.Rand) *tensor.COO {
	rows, cols := 1+rng.Intn(60), 1+rng.Intn(60)
	switch rng.Intn(4) {
	case 0:
		return generate.Uniform(rng, rows, cols, 1+rng.Intn(200))
	case 1:
		return generate.PowerLawRows(rng, rows, cols, 1+rng.Intn(200), 1.2)
	case 2:
		return generate.BlockDense(rng, rows, cols, 1+rng.Intn(8), 1+rng.Intn(4), 0.9)
	default:
		return generate.Banded(rng, rows, cols, rng.Intn(4), 0.7)
	}
}

// TestQuickRandomPartitionRoundTrip is the decomposition soundness property:
// for any matrix and any valid rule, the regions are disjoint and complete —
// reassembling them yields the source tensor bit-for-bit.
func TestQuickRandomPartitionRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomSkewedCOO(rng)
		rule := randomRule(rng)
		pt, err := Decompose(c, rule)
		if err != nil {
			t.Logf("decompose %+v: %v", rule, err)
			return false
		}
		// Complete: region sizes sum to the source nnz (disjointness then
		// follows from the bit-identical reassembly below — a duplicated
		// nonzero would surplus the count, a dropped one would deficit it).
		if pt.NNZ() != c.NNZ() {
			t.Logf("rule %+v: regions hold %d nonzeros, source has %d", rule, pt.NNZ(), c.NNZ())
			return false
		}
		// Region shape is determined by the rule alone, tail always last.
		if want := rule.Classes(); len(pt.Regions) != len(want) {
			t.Logf("rule %+v: %d regions, want %d", rule, len(pt.Regions), len(want))
			return false
		}
		if pt.Regions[len(pt.Regions)-1].Class != RegionTail {
			t.Logf("rule %+v: last region is %v", rule, pt.Regions[len(pt.Regions)-1].Class)
			return false
		}
		back := pt.ToCOO()
		want := c.Clone()
		want.SortRowMajor()
		if back.NNZ() != want.NNZ() {
			return false
		}
		for p := 0; p < want.NNZ(); p++ {
			if back.Coords[0][p] != want.Coords[0][p] ||
				back.Coords[1][p] != want.Coords[1][p] ||
				back.Vals[p] != want.Vals[p] {
				t.Logf("rule %+v: reassembly differs at %d", rule, p)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestDecomposeHeavyRows(t *testing.T) {
	// Row 0 holds 16 nonzeros, rows 1..8 hold one each: mean over nonempty
	// rows is 24/9 ≈ 2.67, so HeavyFactor 4 (cut ≈ 10.7) extracts row 0 only.
	c := tensor.NewCOO([]int{16, 20}, 0)
	for k := int32(0); k < 16; k++ {
		c.Append(1, 0, k)
	}
	for i := int32(1); i <= 8; i++ {
		c.Append(float32(i), i, i)
	}
	pt, err := Decompose(c, Rule{HeavyFactor: 4, EllWidth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(pt.Regions) != 2 {
		t.Fatalf("regions = %d, want heavy+tail", len(pt.Regions))
	}
	heavy, tail := pt.Regions[0], pt.Regions[1]
	if heavy.Class != RegionHeavy || tail.Class != RegionTail {
		t.Fatalf("region classes = %v, %v", heavy.Class, tail.Class)
	}
	if heavy.COO.NNZ() != 16 {
		t.Fatalf("heavy region holds %d nonzeros, want 16", heavy.COO.NNZ())
	}
	for _, i := range heavy.COO.Coords[0] {
		if i != 0 {
			t.Fatalf("heavy region contains row %d", i)
		}
	}
	if tail.COO.NNZ() != 8 {
		t.Fatalf("tail holds %d nonzeros, want 8", tail.COO.NNZ())
	}
}

func TestDecomposeDenseBlocks(t *testing.T) {
	// One fully dense 4x4 tile plus scattered singles: BlockFill 0.5 takes
	// the tile, leaves the strays.
	c := tensor.NewCOO([]int{16, 16}, 0)
	for i := int32(4); i < 8; i++ {
		for k := int32(8); k < 12; k++ {
			c.Append(2, i, k)
		}
	}
	c.Append(1, 0, 0)
	c.Append(1, 15, 15)
	c.Append(1, 3, 12)
	pt, err := Decompose(c, Rule{BlockSize: 4, BlockFill: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if pt.Regions[0].Class != RegionBlocks || pt.Regions[0].COO.NNZ() != 16 {
		t.Fatalf("blocks region %v with %d nonzeros", pt.Regions[0].Class, pt.Regions[0].COO.NNZ())
	}
	if pt.Regions[1].COO.NNZ() != 3 {
		t.Fatalf("tail holds %d nonzeros, want 3", pt.Regions[1].COO.NNZ())
	}

	// A boundary tile's fill is judged over its clipped area: the 2-wide
	// remainder column of an 16x18 matrix fully filled over a 4x2 sliver
	// must qualify at fill 1.0.
	c2 := tensor.NewCOO([]int{16, 18}, 0)
	for i := int32(0); i < 4; i++ {
		for k := int32(16); k < 18; k++ {
			c2.Append(1, i, k)
		}
	}
	pt2, err := Decompose(c2, Rule{BlockSize: 4, BlockFill: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if pt2.Regions[0].COO.NNZ() != 8 {
		t.Fatalf("clipped boundary tile not extracted: blocks hold %d", pt2.Regions[0].COO.NNZ())
	}
}

func TestDecomposeHeavyClaimsBeforeBlocks(t *testing.T) {
	// A dense tile inside a heavy row belongs to the heavy region: extraction
	// order is heavy first, so the tile (rows 0..3) loses row 0's nonzeros
	// and, at fill 1.0, no longer qualifies.
	c := tensor.NewCOO([]int{8, 8}, 0)
	for i := int32(0); i < 4; i++ {
		for k := int32(0); k < 4; k++ {
			c.Append(1, i, k)
		}
	}
	for k := int32(4); k < 8; k++ {
		c.Append(1, 0, k) // row 0: 8 nonzeros; rows 1-3: 4 each
	}
	pt, err := Decompose(c, Rule{BlockSize: 4, BlockFill: 1.0, HeavyFactor: 1.6, EllWidth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if pt.Regions[0].Class != RegionBlocks || pt.Regions[1].Class != RegionHeavy {
		t.Fatalf("region order %v, %v", pt.Regions[0].Class, pt.Regions[1].Class)
	}
	if got := pt.Regions[1].COO.NNZ(); got != 8 {
		t.Fatalf("heavy region holds %d, want all 8 of row 0", got)
	}
	if got := pt.Regions[0].COO.NNZ(); got != 0 {
		t.Fatalf("blocks region holds %d, want 0 (tile broken by heavy extraction)", got)
	}
	if got := pt.Regions[2].COO.NNZ(); got != 12 {
		t.Fatalf("tail holds %d, want 12", got)
	}
}

func TestDecomposeDegenerateInputs(t *testing.T) {
	full := Rule{BlockSize: 4, BlockFill: 0.5, HeavyFactor: 4, EllWidth: 4}

	// Empty matrix: all regions empty, reassembly empty.
	empty := tensor.NewCOO([]int{10, 10}, 0)
	pt, err := Decompose(empty, full)
	if err != nil {
		t.Fatal(err)
	}
	if pt.NNZ() != 0 || len(pt.Regions) != 3 {
		t.Fatalf("empty matrix: nnz %d, regions %d", pt.NNZ(), len(pt.Regions))
	}
	if pt.ToCOO().NNZ() != 0 {
		t.Fatal("empty reassembly nonempty")
	}

	// Single nonzero: one row at the mean, so HeavyFactor 4 leaves it (cut =
	// 4), and a 1/16-filled tile misses BlockFill 0.5 — it lands in the tail.
	single := tensor.NewCOO([]int{10, 10}, 0)
	single.Append(3.5, 7, 2)
	pt, err = Decompose(single, full)
	if err != nil {
		t.Fatal(err)
	}
	if got := pt.Regions[2].COO.NNZ(); got != 1 {
		t.Fatalf("single nonzero not in tail (tail holds %d)", got)
	}
	// At HeavyFactor 1 the cut equals the mean, so the same nonzero is heavy.
	pt1, err := Decompose(single, Rule{HeavyFactor: 1, EllWidth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := pt1.Regions[0].COO.NNZ(); got != 1 {
		t.Fatalf("single nonzero not heavy at factor 1 (heavy holds %d)", got)
	}
	back := pt.ToCOO()
	if back.NNZ() != 1 || back.Vals[0] != 3.5 || back.Coords[0][0] != 7 || back.Coords[1][0] != 2 {
		t.Fatalf("single nonzero round trip broken: %v", back)
	}

	// Fully dense matrix with uniform rows: every tile qualifies, heavy
	// extraction takes every row first (factor 1 means every row at the
	// mean), so everything lands in one region.
	dense := tensor.NewCOO([]int{8, 8}, 0)
	for i := int32(0); i < 8; i++ {
		for k := int32(0); k < 8; k++ {
			dense.Append(1, i, k)
		}
	}
	pt, err = Decompose(dense, Rule{HeavyFactor: 1, EllWidth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := pt.Regions[0].COO.NNZ(); got != 64 {
		t.Fatalf("uniform dense: heavy region holds %d, want all 64", got)
	}
	if got := pt.Regions[1].COO.NNZ(); got != 0 {
		t.Fatalf("uniform dense: tail holds %d, want 0", got)
	}
}

func TestDecomposeRejects(t *testing.T) {
	c3 := tensor.NewCOO([]int{4, 4, 4}, 0)
	if _, err := Decompose(c3, Rule{}); err == nil {
		t.Fatal("accepted order-3 tensor")
	}
	c := tensor.NewCOO([]int{4, 4}, 0)
	for _, r := range []Rule{
		{BlockSize: -1},
		{BlockSize: maxRuleExtent + 1},
		{BlockSize: 4, BlockFill: 1.5},
		{BlockSize: 4, BlockFill: -0.1},
		{HeavyFactor: -2, EllWidth: 4},
		{HeavyFactor: 2, EllWidth: 0},
		{HeavyFactor: 2, EllWidth: -3},
	} {
		if _, err := Decompose(c, r); err == nil {
			t.Errorf("accepted invalid rule %+v", r)
		}
	}
}

// TestPartitionedAssembleRoundTrip checks the stored form: padding zeros are
// dropped, every original nonzero survives with its exact value.
func TestPartitionedAssembleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := generate.PowerLawRows(rng, 48, 40, 300, 1.3)
	pt, err := Decompose(c, Rule{BlockSize: 4, BlockFill: 0.5, HeavyFactor: 4, EllWidth: 4})
	if err != nil {
		t.Fatal(err)
	}
	asm, err := pt.Assemble(AssembleOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := asm.Validate(); err != nil {
		t.Fatalf("assembled partition invalid: %v", err)
	}
	back := asm.ToCOO()
	want := c.Clone()
	want.SortRowMajor()
	// Explicit zeros (the generators never emit them) aside, ToCOO drops
	// padding, so the round trip is exact.
	if back.NNZ() != want.NNZ() {
		t.Fatalf("round trip nnz %d, want %d", back.NNZ(), want.NNZ())
	}
	for p := 0; p < want.NNZ(); p++ {
		if back.Coords[0][p] != want.Coords[0][p] || back.Coords[1][p] != want.Coords[1][p] || back.Vals[p] != want.Vals[p] {
			t.Fatalf("round trip differs at %d", p)
		}
	}
}

func TestPartitionedLocate(t *testing.T) {
	c := tensor.NewCOO([]int{8, 8}, 0)
	for i := int32(0); i < 4; i++ {
		for k := int32(0); k < 4; k++ {
			if i == 1 && k == 2 {
				continue // hole inside the dense tile → padding position
			}
			c.Append(float32(10*i+k+1), i, k)
		}
	}
	c.Append(9, 6, 6)
	pt, err := Decompose(c, Rule{BlockSize: 4, BlockFill: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	asm, err := pt.Assemble(AssembleOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, r := range asm.Regions {
		total += len(r.Stored.Vals)
	}
	// Every source nonzero locates to a position holding its value.
	for p := 0; p < c.NNZ(); p++ {
		pos, ok := asm.Locate([]int32{c.Coords[0][p], c.Coords[1][p]})
		if !ok {
			t.Fatalf("nonzero (%d,%d) not locatable", c.Coords[0][p], c.Coords[1][p])
		}
		if pos < 0 || pos >= int64(total) {
			t.Fatalf("position %d outside concatenated values [0,%d)", pos, total)
		}
		var v float32
		off := int64(0)
		for _, r := range asm.Regions {
			if pos < off+int64(len(r.Stored.Vals)) {
				v = r.Stored.Vals[pos-off]
				break
			}
			off += int64(len(r.Stored.Vals))
		}
		if v != c.Vals[p] {
			t.Fatalf("locate (%d,%d) → value %g, want %g", c.Coords[0][p], c.Coords[1][p], v, c.Vals[p])
		}
	}
	// The in-tile hole is padding: locatable (the dense interior materializes
	// it) but zero.
	pos, ok := asm.Locate([]int32{1, 2})
	if !ok {
		t.Fatal("padding position inside dense tile not locatable")
	}
	if pos < 0 || pos >= int64(total) {
		t.Fatalf("padding position %d out of range", pos)
	}
	// A coordinate in no region at all is not locatable.
	if _, ok := asm.Locate([]int32{5, 0}); ok {
		t.Fatal("located a coordinate no region stores")
	}
}

func TestPartitionedSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	c := generate.BlockDense(rng, 40, 40, 4, 3, 0.9)
	pt, err := Decompose(c, Rule{BlockSize: 4, BlockFill: 0.6, HeavyFactor: 8, EllWidth: 4})
	if err != nil {
		t.Fatal(err)
	}
	asm, err := pt.Assemble(AssembleOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := asm.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPartitioned(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Validate(); err != nil {
		t.Fatalf("loaded partition invalid: %v", err)
	}
	a, b := asm.ToCOO(), loaded.ToCOO()
	if a.NNZ() != b.NNZ() {
		t.Fatalf("loaded nnz %d, want %d", b.NNZ(), a.NNZ())
	}
	for p := 0; p < a.NNZ(); p++ {
		if a.Coords[0][p] != b.Coords[0][p] || a.Coords[1][p] != b.Coords[1][p] || a.Vals[p] != b.Vals[p] {
			t.Fatalf("loaded tensor differs at %d", p)
		}
	}
	// Identical tensors serialize identically.
	var buf2 bytes.Buffer
	if err := loaded.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("re-serialization differs")
	}
}

func TestLoadPartitionedRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	c := generate.Uniform(rng, 20, 20, 60)
	pt, _ := Decompose(c, Rule{BlockSize: 4, BlockFill: 0.5})
	asm, err := pt.Assemble(AssembleOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := asm.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	if _, err := LoadPartitioned(strings.NewReader("NOTAPART")); err == nil {
		t.Fatal("accepted bad magic")
	}
	if _, err := LoadPartitioned(strings.NewReader("WACO")); err == nil {
		t.Fatal("accepted truncated magic")
	}
	bad := append([]byte(nil), good...)
	bad[len(partMagic)] = 0xFF // corrupt the version word
	if _, err := LoadPartitioned(bytes.NewReader(bad)); err == nil {
		t.Fatal("accepted wrong version")
	}
	if _, err := LoadPartitioned(bytes.NewReader(good[:len(good)/2])); err == nil {
		t.Fatal("accepted truncated payload")
	}

	// Corrupt structure must be caught by post-decode validation: a region
	// with an out-of-extent coordinate.
	evil := &Partitioned{Dims: asm.Dims, Rule: asm.Rule}
	for _, r := range asm.Regions {
		st := *r.Stored
		evil.Regions = append(evil.Regions, Region{Class: r.Class, Stored: &st})
	}
	for _, r := range evil.Regions {
		for l := range r.Stored.Levels {
			if len(r.Stored.Levels[l].Crd) > 0 {
				crd := append([]int32(nil), r.Stored.Levels[l].Crd...)
				crd[0] = r.Stored.Levels[l].Extent + 5
				r.Stored.Levels[l].Crd = crd
			}
		}
	}
	var evilBuf bytes.Buffer
	// Save validates, so write the header and payload by hand.
	evilBuf.WriteString(partMagic)
	evilBuf.Write([]byte{1, 0, 0, 0})
	if err := gob.NewEncoder(&evilBuf).Encode(partDisk{Dims: evil.Dims, Rule: evil.Rule, Regions: evil.Regions}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPartitioned(bytes.NewReader(evilBuf.Bytes())); err == nil {
		t.Fatal("accepted out-of-extent coordinates")
	}
}

func TestStoredValidateCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	c := generate.Uniform(rng, 30, 30, 120)
	mk := func() *Stored {
		st, err := Assemble(c.Clone(), CSR(), AssembleOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	if err := mk().Validate(); err != nil {
		t.Fatalf("fresh assembly invalid: %v", err)
	}
	cases := []struct {
		name    string
		corrupt func(*Stored)
	}{
		{"values length", func(s *Stored) { s.Vals = s.Vals[:len(s.Vals)-1] }},
		{"pos monotonicity", func(s *Stored) {
			for l := range s.Levels {
				if len(s.Levels[l].Pos) > 2 {
					s.Levels[l].Pos[1] = s.Levels[l].Pos[len(s.Levels[l].Pos)-1] + 10
					return
				}
			}
		}},
		{"pos origin", func(s *Stored) {
			for l := range s.Levels {
				if len(s.Levels[l].Pos) > 0 {
					s.Levels[l].Pos[0] = 1
					return
				}
			}
		}},
		{"coord extent", func(s *Stored) {
			for l := range s.Levels {
				if len(s.Levels[l].Crd) > 0 {
					s.Levels[l].Crd[0] = s.Levels[l].Extent
					return
				}
			}
		}},
		{"kind mismatch", func(s *Stored) { s.Levels[0].Kind = Compressed }},
		{"level count", func(s *Stored) { s.Levels = s.Levels[:len(s.Levels)-1] }},
		{"dims order", func(s *Stored) { s.Dims = s.Dims[:1] }},
	}
	for _, tc := range cases {
		st := mk()
		tc.corrupt(st)
		if err := st.Validate(); err == nil {
			t.Errorf("%s corruption not detected", tc.name)
		}
	}
}
