package format

import (
	"bytes"
	"testing"

	"waco/internal/tensor"
)

// fuzzRule decodes a Rule from four bytes, hitting the full shape space:
// tail-only, blocks-only, heavy-only, and both extractions, with boundary
// fills 0 and 1 reachable.
func fuzzRule(bsel, fsel, hsel, wsel uint8) Rule {
	var r Rule
	if bsel%4 != 0 {
		r.BlockSize = int32(bsel%16) + 1
		r.BlockFill = float64(fsel%11) / 10
	}
	if hsel%4 != 0 {
		r.HeavyFactor = float64(hsel%32) / 4
		if r.HeavyFactor == 0 {
			r.HeavyFactor = 0.25
		}
		r.EllWidth = int32(wsel%8) + 1
	}
	return r
}

func fuzzCOO(rows, cols uint8, data []byte) *tensor.COO {
	dims := []int{int(rows%64) + 1, int(cols%64) + 1}
	coo := tensor.NewCOO(dims, len(data)/3)
	for i := 0; i+3 <= len(data); i += 3 {
		// Strictly positive values so stored entries are distinguishable
		// from dense-interior padding.
		coo.Append(float32(data[i+2])+1,
			int32(int(data[i])%dims[0]), int32(int(data[i+1])%dims[1]))
	}
	coo.SortRowMajor()
	coo.Dedup()
	return coo
}

// FuzzPartitionedAssemble drives decompose → assemble → reassemble for
// arbitrary matrices and rules: the partition must be disjoint and complete
// in coordinate form, and the assembled regions must reproduce every nonzero
// exactly once padding is dropped.
func FuzzPartitionedAssemble(f *testing.F) {
	f.Add(uint8(16), uint8(16), uint8(5), uint8(5), uint8(5), uint8(3), []byte{0, 0, 1, 1, 1, 2, 3, 3, 3})
	f.Add(uint8(8), uint8(8), uint8(0), uint8(0), uint8(0), uint8(0), []byte{7, 7, 9})
	f.Add(uint8(63), uint8(1), uint8(3), uint8(10), uint8(9), uint8(7), []byte{62, 0, 1, 0, 0, 2, 31, 0, 3})
	f.Add(uint8(32), uint8(32), uint8(4), uint8(0), uint8(0), uint8(0), []byte{})
	f.Fuzz(func(t *testing.T, rows, cols, bsel, fsel, hsel, wsel uint8, data []byte) {
		coo := fuzzCOO(rows, cols, data)
		rule := fuzzRule(bsel, fsel, hsel, wsel)
		if err := rule.Validate(); err != nil {
			t.Fatalf("fuzzRule emitted invalid rule %+v: %v", rule, err)
		}
		pt, err := Decompose(coo, rule)
		if err != nil {
			t.Fatalf("decompose %+v: %v", rule, err)
		}
		if pt.NNZ() != coo.NNZ() {
			t.Fatalf("rule %+v: regions hold %d nonzeros, source has %d", rule, pt.NNZ(), coo.NNZ())
		}
		want := coo.Clone()
		want.SortRowMajor()
		back := pt.ToCOO()
		if back.NNZ() != want.NNZ() {
			t.Fatalf("coordinate reassembly nnz %d, want %d", back.NNZ(), want.NNZ())
		}
		for p := 0; p < want.NNZ(); p++ {
			if back.Coords[0][p] != want.Coords[0][p] || back.Coords[1][p] != want.Coords[1][p] || back.Vals[p] != want.Vals[p] {
				t.Fatalf("rule %+v: coordinate reassembly differs at %d", rule, p)
			}
		}
		asm, err := pt.Assemble(AssembleOptions{MaxEntries: 1 << 18}, nil)
		if err != nil {
			if IsStorageLimit(err) {
				t.Skip("region exceeds the assembly budget")
			}
			t.Fatalf("assemble: %v", err)
		}
		if err := asm.Validate(); err != nil {
			t.Fatalf("assembled partition invalid: %v", err)
		}
		got := asm.ToCOO()
		if got.NNZ() != want.NNZ() {
			t.Fatalf("rule %+v: stored reassembly nnz %d, want %d", rule, got.NNZ(), want.NNZ())
		}
		for p := 0; p < want.NNZ(); p++ {
			if got.Coords[0][p] != want.Coords[0][p] || got.Coords[1][p] != want.Coords[1][p] || got.Vals[p] != want.Vals[p] {
				t.Fatalf("rule %+v: stored reassembly differs at %d", rule, p)
			}
		}
	})
}

// FuzzPartitionedLoad feeds arbitrary bytes to the persistence loader: it
// must reject garbage with an error (never panic), and anything it accepts
// must validate and survive a save/load round trip byte-identically.
func FuzzPartitionedLoad(f *testing.F) {
	// Seed with a genuine artifact so the fuzzer explores near-valid inputs.
	coo := fuzzCOO(24, 24, []byte{0, 0, 1, 1, 1, 2, 5, 5, 3, 9, 2, 4, 23, 23, 5})
	pt, err := Decompose(coo, Rule{BlockSize: 4, BlockFill: 0.5, HeavyFactor: 2, EllWidth: 4})
	if err != nil {
		f.Fatal(err)
	}
	asm, err := pt.Assemble(AssembleOptions{}, nil)
	if err != nil {
		f.Fatal(err)
	}
	var seed bytes.Buffer
	if err := asm.Save(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte(partMagic))
	f.Add([]byte("WACOPART\x01\x00\x00\x00"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := LoadPartitioned(bytes.NewReader(data))
		if err != nil {
			return // rejected, as long as it did not panic
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("loader accepted a partition that fails validation: %v", err)
		}
		var out bytes.Buffer
		if err := p.Save(&out); err != nil {
			t.Fatalf("re-saving an accepted partition: %v", err)
		}
		p2, err := LoadPartitioned(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("reloading a re-saved partition: %v", err)
		}
		if p2.NNZStored() != p.NNZStored() || p2.Bytes() != p.Bytes() {
			t.Fatalf("round trip changed storage: %d/%d bytes %d/%d",
				p.NNZStored(), p2.NNZStored(), p.Bytes(), p2.Bytes())
		}
	})
}
