package format

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"waco/internal/generate"
	"waco/internal/tensor"
)

func TestNamedFormatsValidate(t *testing.T) {
	for name, f := range map[string]Format{
		"CSR":    CSR(),
		"CSC":    CSC(),
		"BCSR":   BCSR(4, 8),
		"COO":    COOLike(2),
		"CSF3":   CSF(3),
		"Dense2": Dense(2),
		"Dense3": Dense(3),
	} {
		if err := f.Validate(); err != nil {
			t.Errorf("%s invalid: %v", name, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	f := CSR()
	f.Levels[1] = f.Levels[0] // duplicate level
	if err := f.Validate(); err == nil {
		t.Fatal("accepted duplicate level")
	}
	g := CSR()
	g.Splits[0] = 0
	if err := g.Validate(); err == nil {
		t.Fatal("accepted zero split")
	}
	h := CSR()
	h.Levels = h.Levels[:3]
	if err := h.Validate(); err == nil {
		t.Fatal("accepted missing level")
	}
	k := CSR()
	k.Levels[0].Mode = 9
	if err := k.Validate(); err == nil {
		t.Fatal("accepted out-of-range mode")
	}
}

func TestLevelExtent(t *testing.T) {
	f := BCSR(4, 8)
	dims := []int{10, 16}
	// Outer i: ceil(10/4) = 3; outer k: ceil(16/8) = 2; inners: 4 and 8.
	if got := f.LevelExtent(0, dims); got != 3 {
		t.Fatalf("outer i extent %d", got)
	}
	if got := f.LevelExtent(1, dims); got != 2 {
		t.Fatalf("outer k extent %d", got)
	}
	if got := f.LevelExtent(2, dims); got != 4 {
		t.Fatalf("inner i extent %d", got)
	}
	if got := f.LevelExtent(3, dims); got != 8 {
		t.Fatalf("inner k extent %d", got)
	}
}

func TestStringNamed(t *testing.T) {
	s := CSR().StringNamed([]string{"i", "k"})
	if !strings.Contains(s, "i1:U") || !strings.Contains(s, "k1:C") {
		t.Fatalf("unexpected format string %q", s)
	}
}

func TestEqualAndClone(t *testing.T) {
	a, b := BCSR(4, 4), BCSR(4, 4)
	if !a.Equal(b) {
		t.Fatal("equal formats not Equal")
	}
	c := a.Clone()
	c.Splits[0] = 2
	if a.Splits[0] != 4 {
		t.Fatal("Clone shares storage")
	}
	if a.Equal(c) {
		t.Fatal("differing splits compare Equal")
	}
	d := a.Clone()
	d.Levels[0].Kind = Compressed
	if a.Equal(d) {
		t.Fatal("differing kinds compare Equal")
	}
}

func assembleRoundTrip(t *testing.T, c *tensor.COO, f Format) *Stored {
	t.Helper()
	st, err := Assemble(c, f, AssembleOptions{})
	if err != nil {
		t.Fatalf("Assemble(%v): %v", f, err)
	}
	back := st.ToCOO()
	c.SortRowMajor()
	if back.NNZ() != c.NNZ() {
		t.Fatalf("round trip NNZ %d, want %d (format %v)", back.NNZ(), c.NNZ(), f)
	}
	for p := 0; p < c.NNZ(); p++ {
		for m := 0; m < c.Order(); m++ {
			if back.Coords[m][p] != c.Coords[m][p] {
				t.Fatalf("coordinate mismatch at nnz %d mode %d (format %v)", p, m, f)
			}
		}
		if back.Vals[p] != c.Vals[p] {
			t.Fatalf("value mismatch at nnz %d (format %v)", p, f)
		}
	}
	return st
}

func TestAssembleRoundTripNamedFormats(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := generate.Uniform(rng, 50, 70, 400)
	for _, f := range []Format{CSR(), CSC(), BCSR(4, 4), BCSR(3, 5), COOLike(2), Dense(2)} {
		assembleRoundTrip(t, c.Clone(), f)
	}
}

func TestAssembleRoundTrip3D(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	base := generate.Uniform(rng, 30, 30, 150)
	t3 := generate.Tensor3D(rng, base, 16, 2)
	assembleRoundTrip(t, t3.Clone(), CSF(3))
	assembleRoundTrip(t, t3.Clone(), Dense(3))
}

func TestAssembleCSRMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := generate.Uniform(rng, 40, 40, 200)
	st, err := Assemble(c.Clone(), CSR(), AssembleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := c.Clone().ToCSR()
	// Level 0 is U over rows; level 1 is C: Pos/Crd must match CSR arrays.
	l1 := st.Levels[1]
	if len(l1.Pos) != ref.NumRows+1 {
		t.Fatalf("pos length %d, want %d", len(l1.Pos), ref.NumRows+1)
	}
	for r := 0; r <= ref.NumRows; r++ {
		if l1.Pos[r] != int64(ref.RowPtr[r]) {
			t.Fatalf("Pos[%d] = %d, want %d", r, l1.Pos[r], ref.RowPtr[r])
		}
	}
	for p := range ref.ColIdx {
		if l1.Crd[p] != ref.ColIdx[p] {
			t.Fatalf("Crd[%d] = %d, want %d", p, l1.Crd[p], ref.ColIdx[p])
		}
		if st.Vals[p] != ref.Vals[p] {
			t.Fatalf("Vals[%d] = %g, want %g", p, st.Vals[p], ref.Vals[p])
		}
	}
}

func TestAssembleBCSRHasExplicitZeros(t *testing.T) {
	// One nonzero stored in 4x4 blocks: the values array must be a full
	// 16-entry block with one nonzero.
	c := tensor.NewCOO([]int{8, 8}, 1)
	c.Append(5, 1, 2)
	st, err := Assemble(c, BCSR(4, 4), AssembleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.NNZStored() != 16 {
		t.Fatalf("stored entries %d, want 16", st.NNZStored())
	}
	var nonzeros int
	for _, v := range st.Vals {
		if v != 0 {
			nonzeros++
		}
	}
	if nonzeros != 1 {
		t.Fatalf("nonzero count %d, want 1", nonzeros)
	}
}

func TestAssembleStorageLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := generate.Uniform(rng, 1024, 1024, 2000)
	// Dense 2D of 1M entries against a limit of 1000 must fail.
	_, err := Assemble(c, Dense(2), AssembleOptions{MaxEntries: 1000})
	if !errors.Is(err, ErrStorageLimit) {
		t.Fatalf("err = %v, want ErrStorageLimit", err)
	}
	// Sparse-friendly CSR under the same nnz-proportional limit succeeds.
	if _, err := Assemble(c, CSR(), AssembleOptions{MaxEntries: 8 * int64(c.NNZ())}); err != nil {
		t.Fatalf("CSR under limit: %v", err)
	}
}

func TestAssembleOrderMismatch(t *testing.T) {
	c := tensor.NewCOO([]int{4, 4, 4}, 0)
	if _, err := Assemble(c, CSR(), AssembleOptions{}); err == nil {
		t.Fatal("accepted order mismatch")
	}
}

func TestLocateC(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := generate.Uniform(rng, 30, 30, 150)
	st, err := Assemble(c.Clone(), CSR(), AssembleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	lvl := &st.Levels[1]
	ref, _ := c.Clone().ToCSR()
	for r := 0; r < ref.NumRows; r++ {
		cols, vals := ref.Row(r)
		for q, col := range cols {
			pos, ok := lvl.LocateC(int64(r), col)
			if !ok {
				t.Fatalf("LocateC missed (%d,%d)", r, col)
			}
			if st.Vals[pos] != vals[q] {
				t.Fatalf("LocateC wrong position for (%d,%d)", r, col)
			}
		}
		// A column that is absent must not be found.
		for probe := int32(0); probe < 30; probe++ {
			found := false
			for _, col := range cols {
				if col == probe {
					found = true
				}
			}
			if _, ok := lvl.LocateC(int64(r), probe); ok != found {
				t.Fatalf("LocateC(%d,%d) = %v, want %v", r, probe, ok, found)
			}
		}
	}
}

// Property: any valid random format round-trips any random matrix.
func TestQuickRandomFormatRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := generate.Uniform(rng, 1+rng.Intn(40), 1+rng.Intn(40), 1+rng.Intn(120))
		fm := randomFormat(rng, 2)
		st, err := Assemble(c.Clone(), fm, AssembleOptions{MaxEntries: 1 << 22})
		if errors.Is(err, ErrStorageLimit) {
			return true // legitimately excluded
		}
		if err != nil {
			t.Logf("assemble error for %v: %v", fm, err)
			return false
		}
		back := st.ToCOO()
		c.SortRowMajor()
		if back.NNZ() != c.NNZ() {
			t.Logf("format %v: nnz %d want %d", fm, back.NNZ(), c.NNZ())
			return false
		}
		for p := 0; p < c.NNZ(); p++ {
			if back.Coords[0][p] != c.Coords[0][p] || back.Coords[1][p] != c.Coords[1][p] || back.Vals[p] != c.Vals[p] {
				t.Logf("format %v: mismatch at %d", fm, p)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// randomFormat draws a uniformly random valid format: random splits in
// {1,2,3,4,8}, random level permutation, random level kinds.
func randomFormat(rng *rand.Rand, order int) Format {
	splits := []int32{1, 2, 3, 4, 8}
	f := Format{Splits: make([]int32, order), Levels: make([]Level, 0, 2*order)}
	for m := 0; m < order; m++ {
		f.Splits[m] = splits[rng.Intn(len(splits))]
	}
	for m := 0; m < order; m++ {
		f.Levels = append(f.Levels,
			Level{Mode: m, Kind: LevelKind(rng.Intn(2))},
			Level{Mode: m, Inner: true, Kind: LevelKind(rng.Intn(2))})
	}
	rng.Shuffle(len(f.Levels), func(a, b int) {
		f.Levels[a], f.Levels[b] = f.Levels[b], f.Levels[a]
	})
	return f
}

func TestBytesAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c := generate.Uniform(rng, 64, 64, 300)
	csr, err := Assemble(c.Clone(), CSR(), AssembleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dense, err := Assemble(c.Clone(), Dense(2), AssembleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if csr.Bytes() >= dense.Bytes() {
		t.Fatalf("CSR bytes %d >= dense bytes %d for a sparse matrix", csr.Bytes(), dense.Bytes())
	}
}
