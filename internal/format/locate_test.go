package format

import (
	"math/rand"
	"testing"

	"waco/internal/generate"
	"waco/internal/tensor"
)

func TestStoredLocateFindsEveryNonzero(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	c := generate.Uniform(rng, 60, 45, 400)
	for _, f := range []Format{CSR(), CSC(), BCSR(4, 4), COOLike(2), Dense(2)} {
		st, err := Assemble(c.Clone(), f, AssembleOptions{})
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		for p := 0; p < c.NNZ(); p++ {
			coords := []int32{c.Coords[0][p], c.Coords[1][p]}
			pos, ok := st.Locate(coords)
			if !ok {
				t.Fatalf("%v: nonzero (%d,%d) not located", f, coords[0], coords[1])
			}
			if st.Vals[pos] != c.Vals[p] {
				t.Fatalf("%v: located wrong value at (%d,%d)", f, coords[0], coords[1])
			}
		}
	}
}

func TestStoredLocateMissing(t *testing.T) {
	c := tensor.NewCOO([]int{8, 8}, 2)
	c.Append(1, 1, 1)
	c.Append(2, 5, 6)
	st, err := Assemble(c, CSR(), AssembleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Locate([]int32{1, 2}); ok {
		t.Fatal("located absent coordinate in compressed level")
	}
	if _, ok := st.Locate([]int32{0, 0}); ok {
		t.Fatal("located absent row")
	}
	// Dense storage locates everything in range (explicit zeros).
	std, err := Assemble(c.Clone(), Dense(2), AssembleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pos, ok := std.Locate([]int32{1, 2})
	if !ok {
		t.Fatal("dense locate failed in range")
	}
	if std.Vals[pos] != 0 {
		t.Fatal("dense absent cell should hold zero")
	}
}

func TestStoredLocate3D(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	base := generate.Uniform(rng, 20, 20, 80)
	t3 := generate.Tensor3D(rng, base, 10, 2)
	st, err := Assemble(t3.Clone(), CSF(3), AssembleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < t3.NNZ(); p++ {
		coords := []int32{t3.Coords[0][p], t3.Coords[1][p], t3.Coords[2][p]}
		pos, ok := st.Locate(coords)
		if !ok {
			t.Fatalf("3-D locate missed %v", coords)
		}
		if st.Vals[pos] != t3.Vals[p] {
			t.Fatalf("3-D locate wrong value at %v", coords)
		}
	}
}

func TestStoredLocateOutOfExtent(t *testing.T) {
	c := tensor.NewCOO([]int{10, 10}, 1)
	c.Append(1, 9, 9)
	st, err := Assemble(c, BCSR(4, 4), AssembleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Padding cell inside the last block: locatable, zero value.
	if pos, ok := st.Locate([]int32{9, 8}); !ok || st.Vals[pos] != 0 {
		t.Fatal("padding cell should locate to an explicit zero")
	}
}
