package schedule

import (
	"math/rand"
	"testing"

	"waco/internal/format"
)

func TestSampleConcordantValidAndConcordant(t *testing.T) {
	for _, alg := range Algorithms {
		sp := DefaultSpace(alg)
		rng := rand.New(rand.NewSource(21))
		for trial := 0; trial < 100; trial++ {
			ss := sp.SampleConcordant(rng)
			if err := ss.Validate(); err != nil {
				t.Fatalf("%v trial %d: %v", alg, trial, err)
			}
			// The traversal must follow the level order, except possibly a
			// hoisted parallel variable at the front.
			order := ss.ComputeOrder
			levels := ss.AFormat.Levels
			// Find the alignment offset: either fully concordant or the
			// first var was hoisted.
			aligned := true
			for i, v := range order {
				if levels[i].Mode != v.Mode || levels[i].Inner != v.Inner {
					aligned = false
					break
				}
			}
			if aligned {
				continue
			}
			// Hoisted case: order[0] is parallelizable, and the remaining
			// variables preserve the level order.
			rest := order[1:]
			j := 0
			for _, l := range levels {
				if l.Mode == order[0].Mode && l.Inner == order[0].Inner {
					continue
				}
				if j >= len(rest) || rest[j].Mode != l.Mode || rest[j].Inner != l.Inner {
					t.Fatalf("%v trial %d: order %v not concordant with levels %v", alg, trial, order, levels)
				}
				j++
			}
		}
	}
}

func TestBestEffortKeepsSerialForCompressedHoist(t *testing.T) {
	// CSC's i1 level is Compressed: hoisting would pay a binary search per
	// iteration, so the schedule must stay serial-concordant.
	ss := BestEffortSchedule(SpMM, format.CSC(), 8, 32)
	if ss.Threads != 1 {
		t.Fatalf("threads %d, want 1", ss.Threads)
	}
	for i, l := range ss.AFormat.Levels {
		v := ss.ComputeOrder[i]
		if v.Mode != l.Mode || v.Inner != l.Inner {
			t.Fatal("not concordant")
		}
	}
}

func TestSampleConcordantKeepsLayouts(t *testing.T) {
	sp := DefaultSpace(SpMV)
	rng := rand.New(rand.NewSource(22))
	sawSwapped := false
	for i := 0; i < 60; i++ {
		ss := sp.SampleConcordant(rng)
		if ss.BLayout == Swapped || ss.CLayout == Swapped {
			sawSwapped = true
		}
	}
	if !sawSwapped {
		t.Fatal("concordant sampling never produced a swapped vector layout")
	}
}
