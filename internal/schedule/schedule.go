// Package schedule defines the SuperSchedule — WACO's unified template that
// specifies a sparse tensor program's format and schedule together (§4.1.2
// of the paper). A SuperSchedule fixes, for the sparse operand A:
//
//   - the per-mode split sizes (split size 1 collapses a split, so the
//     template subsumes all less-split algorithms),
//   - A's storage: level order and per-level U/C formats (the format
//     schedule),
//   - the compute schedule: the traversal order of the split iteration
//     space, which index is parallelized, the worker count, and the
//     dynamic-scheduling chunk size,
//   - for SpMV, the blocked layouts of the dense vector operands.
//
// The package also defines the search Space (the parameter choice sets of
// Table 3), uniform sampling with the paper's validity rules, categorical /
// permutation encoding for the program embedder, and mutation for black-box
// search baselines.
package schedule

import (
	"fmt"
	"strings"

	"waco/internal/format"
)

// Algorithm enumerates the four sparse tensor algebra kernels evaluated in
// the paper.
type Algorithm uint8

const (
	// SpMV is C[i] = A[i,k] * B[k].
	SpMV Algorithm = iota
	// SpMM is C[i,j] = A[i,k] * B[k,j] with dense row-major B, C.
	SpMM
	// SDDMM is D[i,j] = A[i,j] * B[i,k] * C[k,j] with dense row-major B and
	// column-major C; D shares A's sparsity.
	SDDMM
	// MTTKRP is D[i,j] = A[i,k,l] * B[k,j] * C[l,j] with a 3-D sparse A.
	MTTKRP
)

// Algorithms lists all supported algorithms in evaluation order.
var Algorithms = []Algorithm{SpMV, SpMM, SDDMM, MTTKRP}

func (a Algorithm) String() string {
	switch a {
	case SpMV:
		return "SpMV"
	case SpMM:
		return "SpMM"
	case SDDMM:
		return "SDDMM"
	case MTTKRP:
		return "MTTKRP"
	}
	return fmt.Sprintf("Algorithm(%d)", uint8(a))
}

// SparseOrder returns the order of the sparse operand A.
func (a Algorithm) SparseOrder() int {
	if a == MTTKRP {
		return 3
	}
	return 2
}

// ModeNames returns the index-variable names of A's modes.
func (a Algorithm) ModeNames() []string {
	switch a {
	case SDDMM:
		return []string{"i", "j"}
	case MTTKRP:
		return []string{"i", "k", "l"}
	default:
		return []string{"i", "k"}
	}
}

// ParallelizableModes returns the A-modes whose split index variables may be
// parallelized without racing on a reduction: the output row modes, plus the
// column mode for SDDMM (§5.2.1: "it is safe to parallelize both rows and
// columns of the sparse matrix in SDDMM").
func (a Algorithm) ParallelizableModes() []int {
	if a == SDDMM {
		return []int{0, 1}
	}
	return []int{0}
}

// IVar names one split index variable, e.g. {Mode:0, Inner:false} is i1 and
// {Mode:1, Inner:true} is k0 for SpMV.
type IVar struct {
	Mode  int
	Inner bool
}

// NameIn renders the variable with the algorithm's mode names ("i1", "k0").
func (v IVar) NameIn(a Algorithm) string {
	part := "1"
	if v.Inner {
		part = "0"
	}
	return a.ModeNames()[v.Mode] + part
}

// AllIVars returns the 2*order split index variables in canonical order
// (i1, i0, k1, k0, ...).
func AllIVars(a Algorithm) []IVar {
	n := a.SparseOrder()
	out := make([]IVar, 0, 2*n)
	for m := 0; m < n; m++ {
		out = append(out, IVar{Mode: m}, IVar{Mode: m, Inner: true})
	}
	return out
}

// VecLayout selects the memory layout of a blocked dense vector (SpMV's B
// and C operands): Canonical keeps element x at flat index x; Swapped stores
// the outer part innermost (flat = x0*numBlocks + x1), the layout induced by
// a reversed level order.
type VecLayout uint8

const (
	Canonical VecLayout = iota
	Swapped
)

func (l VecLayout) String() string {
	if l == Swapped {
		return "swapped"
	}
	return "canonical"
}

// SuperSchedule is one point in the joint format x schedule space.
type SuperSchedule struct {
	Alg Algorithm
	// AFormat carries the per-mode splits, A's level order, and A's level
	// formats — the "format schedule".
	AFormat format.Format
	// ComputeOrder is the loop traversal order over all split index
	// variables; ComputeOrder[0] is the outermost loop.
	ComputeOrder []IVar
	// Parallel is the parallelized index variable. The validity rules
	// require it to be the outermost loop and drawn from the algorithm's
	// parallelizable modes. Threads == 1 executes serially regardless.
	Parallel IVar
	Threads  int
	// Chunk is the dynamic-scheduling chunk size (in iterations of the
	// parallel loop), the OpenMP schedule(dynamic, chunk) analog.
	Chunk int
	// BLayout/CLayout are the SpMV dense-vector layouts; ignored for other
	// algorithms.
	BLayout, CLayout VecLayout
	// Decomp selects a composable-format decomposition of A. When non-None
	// the matrix is split into regions (dense blocks / heavy rows / tail) and
	// a plan executes per region; AFormat then stores the remainder tail.
	// Only algorithms for which SupportsDecomposition holds may set it.
	Decomp Decomposition
}

// Splits returns the per-mode split sizes (shared with AFormat).
func (s *SuperSchedule) Splits() []int32 { return s.AFormat.Splits }

// Validate enforces the template's validity rules.
func (s *SuperSchedule) Validate() error {
	n := s.Alg.SparseOrder()
	if err := s.AFormat.Validate(); err != nil {
		return err
	}
	if s.AFormat.Order() != n {
		return fmt.Errorf("schedule: format order %d for %v", s.AFormat.Order(), s.Alg)
	}
	if len(s.ComputeOrder) != 2*n {
		return fmt.Errorf("schedule: compute order has %d vars, want %d", len(s.ComputeOrder), 2*n)
	}
	seen := make(map[IVar]bool, 2*n)
	for _, v := range s.ComputeOrder {
		if v.Mode < 0 || v.Mode >= n {
			return fmt.Errorf("schedule: compute var mode %d out of range", v.Mode)
		}
		if seen[v] {
			return fmt.Errorf("schedule: duplicate compute var %s", v.NameIn(s.Alg))
		}
		seen[v] = true
	}
	if s.Threads < 1 {
		return fmt.Errorf("schedule: %d threads", s.Threads)
	}
	if s.Chunk < 1 {
		return fmt.Errorf("schedule: chunk %d", s.Chunk)
	}
	if s.Threads > 1 {
		if s.ComputeOrder[0] != s.Parallel {
			return fmt.Errorf("schedule: parallel var %s is not the outermost loop", s.Parallel.NameIn(s.Alg))
		}
		ok := false
		for _, m := range s.Alg.ParallelizableModes() {
			if s.Parallel.Mode == m {
				ok = true
			}
		}
		if !ok {
			return fmt.Errorf("schedule: mode of %s is a reduction dimension of %v", s.Parallel.NameIn(s.Alg), s.Alg)
		}
	}
	if s.Decomp != DecompNone {
		if s.Decomp > DecompFull {
			return fmt.Errorf("schedule: unknown decomposition %d", uint8(s.Decomp))
		}
		if !SupportsDecomposition(s.Alg) {
			return fmt.Errorf("schedule: decomposition %v is not supported for %v", s.Decomp, s.Alg)
		}
	}
	return nil
}

// String renders a compact, canonical description usable as a dedup key.
func (s *SuperSchedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v|fmt=%s|loop=", s.Alg, s.AFormat.StringNamed(s.Alg.ModeNames()))
	for i, v := range s.ComputeOrder {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(v.NameIn(s.Alg))
	}
	fmt.Fprintf(&b, "|par=%s,t=%d,c=%d", s.Parallel.NameIn(s.Alg), s.Threads, s.Chunk)
	if s.Alg == SpMV {
		fmt.Fprintf(&b, "|B=%v,C=%v", s.BLayout, s.CLayout)
	}
	// Appended only when set so keys of pre-decomposition artifacts are
	// unchanged. Omitting this from the dedup key would collapse schedules
	// differing only in decomposition into one index entry.
	if s.Decomp != DecompNone {
		fmt.Fprintf(&b, "|dec=%v", s.Decomp)
	}
	return b.String()
}

// Clone returns a deep copy.
func (s *SuperSchedule) Clone() *SuperSchedule {
	out := *s
	out.AFormat = s.AFormat.Clone()
	out.ComputeOrder = append([]IVar(nil), s.ComputeOrder...)
	return &out
}
