package schedule

import (
	"fmt"

	"waco/internal/format"
)

// Decomposition widens the SuperSchedule template with a composable-format
// dimension (SparseTIR-style): instead of storing the whole sparse operand in
// one format, the matrix is split by a deterministic rule into regions — dense
// row-blocks, skewed heavy rows, and a compressed remainder tail — and a
// kernel plan executes per region, summing partial results. DecompNone keeps
// the classic single-format path, so the widened space strictly subsumes the
// old one.
type Decomposition uint8

const (
	// DecompNone stores A in one format (the original WACO template).
	DecompNone Decomposition = iota
	// DecompRowBlocks extracts dense blocks into a BCSR-like U/U block region;
	// the remainder stays in the schedule's AFormat.
	DecompRowBlocks
	// DecompHeavyRows extracts unusually heavy rows into an ELL-like
	// fixed-width region; the remainder stays in the schedule's AFormat.
	DecompHeavyRows
	// DecompFull applies both rules: blocks, then heavy rows, then the tail.
	DecompFull
)

// Decompositions lists all decomposition choices, DecompNone first.
var Decompositions = []Decomposition{DecompNone, DecompRowBlocks, DecompHeavyRows, DecompFull}

func (d Decomposition) String() string {
	switch d {
	case DecompNone:
		return "none"
	case DecompRowBlocks:
		return "rowblocks"
	case DecompHeavyRows:
		return "heavyrows"
	case DecompFull:
		return "full"
	}
	return fmt.Sprintf("Decomposition(%d)", uint8(d))
}

// Rule returns the concrete format.Rule preset this choice names. The presets
// are fixed so a Decomposition stays a small categorical the embedder can
// learn; the block/width constants match the generator scales the corpus
// uses (8x8 dense blocks, width-8 ELL chunks, 4x-mean heavy-row cutoff).
func (d Decomposition) Rule() format.Rule {
	switch d {
	case DecompRowBlocks:
		return format.Rule{BlockSize: 8, BlockFill: 0.5}
	case DecompHeavyRows:
		return format.Rule{HeavyFactor: 4, EllWidth: 8}
	case DecompFull:
		return format.Rule{BlockSize: 8, BlockFill: 0.5, HeavyFactor: 4, EllWidth: 8}
	}
	return format.Rule{}
}

// SupportsDecomposition reports whether the algorithm's kernels can execute
// per-region plans. SpMM accumulates into a dense output and SDDMM writes
// disjoint stored-value segments, so both compose across regions; SpMV's
// fast paths and MTTKRP's 3-D operand do not yet.
func SupportsDecomposition(a Algorithm) bool {
	return a == SpMM || a == SDDMM
}

// DecompositionChoices returns the decomposition choice set for an algorithm:
// every preset when the algorithm supports per-region execution, otherwise
// nil — an unsupported algorithm's space has no decomposition dimension at
// all, so its encoding (and thus its embedder layout) stays identical to the
// pre-decomposition one.
func DecompositionChoices(a Algorithm) []Decomposition {
	if SupportsDecomposition(a) {
		return append([]Decomposition(nil), Decompositions...)
	}
	return nil
}
