package schedule

import (
	"math/rand"
	"testing"
	"testing/quick"

	"waco/internal/format"
)

func TestAlgorithmMetadata(t *testing.T) {
	cases := []struct {
		alg   Algorithm
		order int
		names []string
	}{
		{SpMV, 2, []string{"i", "k"}},
		{SpMM, 2, []string{"i", "k"}},
		{SDDMM, 2, []string{"i", "j"}},
		{MTTKRP, 3, []string{"i", "k", "l"}},
	}
	for _, c := range cases {
		if c.alg.SparseOrder() != c.order {
			t.Errorf("%v order %d, want %d", c.alg, c.alg.SparseOrder(), c.order)
		}
		names := c.alg.ModeNames()
		for i := range c.names {
			if names[i] != c.names[i] {
				t.Errorf("%v names %v, want %v", c.alg, names, c.names)
			}
		}
		if len(AllIVars(c.alg)) != 2*c.order {
			t.Errorf("%v has %d ivars", c.alg, len(AllIVars(c.alg)))
		}
	}
	if SDDMM.ParallelizableModes()[1] != 1 {
		t.Error("SDDMM should allow column parallelism")
	}
	if len(SpMM.ParallelizableModes()) != 1 {
		t.Error("SpMM must not allow reduction parallelism")
	}
}

func TestSampleIsValid(t *testing.T) {
	for _, alg := range Algorithms {
		sp := DefaultSpace(alg)
		rng := rand.New(rand.NewSource(7))
		for trial := 0; trial < 200; trial++ {
			ss := sp.Sample(rng)
			if err := ss.Validate(); err != nil {
				t.Fatalf("%v trial %d: %v\n%s", alg, trial, err, ss)
			}
			if ss.ComputeOrder[0] != ss.Parallel {
				t.Fatalf("%v: parallel var not outermost", alg)
			}
		}
	}
}

func TestValidateRejectsBadSchedules(t *testing.T) {
	ss := DefaultSchedule(SpMM, 4)
	if err := ss.Validate(); err != nil {
		t.Fatalf("default schedule invalid: %v", err)
	}

	bad := ss.Clone()
	bad.ComputeOrder[0], bad.ComputeOrder[1] = bad.ComputeOrder[1], bad.ComputeOrder[0]
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted parallel var not outermost")
	}

	bad2 := ss.Clone()
	bad2.Parallel = IVar{Mode: 1} // k is a reduction in SpMM
	bad2.ComputeOrder = []IVar{{Mode: 1}, {Mode: 0}, {Mode: 0, Inner: true}, {Mode: 1, Inner: true}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("accepted reduction parallelism")
	}

	bad3 := ss.Clone()
	bad3.Threads = 0
	if err := bad3.Validate(); err == nil {
		t.Fatal("accepted zero threads")
	}

	bad4 := ss.Clone()
	bad4.Chunk = 0
	if err := bad4.Validate(); err == nil {
		t.Fatal("accepted zero chunk")
	}

	bad5 := ss.Clone()
	bad5.ComputeOrder = bad5.ComputeOrder[:3]
	if err := bad5.Validate(); err == nil {
		t.Fatal("accepted short compute order")
	}

	bad6 := ss.Clone()
	bad6.ComputeOrder[1] = bad6.ComputeOrder[2]
	if err := bad6.Validate(); err == nil {
		t.Fatal("accepted duplicate compute var")
	}

	// Serial schedules may put any variable outermost.
	serial := ss.Clone()
	serial.Threads = 1
	serial.ComputeOrder = []IVar{{Mode: 1}, {Mode: 0}, {Mode: 0, Inner: true}, {Mode: 1, Inner: true}}
	if err := serial.Validate(); err != nil {
		t.Fatalf("serial schedule rejected: %v", err)
	}
}

func TestDefaultScheduleIsCSRLike(t *testing.T) {
	ss := DefaultSchedule(SpMV, 2)
	if !ss.AFormat.Equal(format.CSR()) {
		t.Fatalf("default SpMV format %v is not CSR", ss.AFormat)
	}
	if ss.Chunk != 128 {
		t.Fatalf("SpMV default chunk %d, want 128", ss.Chunk)
	}
	if DefaultSchedule(SpMM, 2).Chunk != 32 {
		t.Fatal("SpMM default chunk should be 32")
	}
	m := DefaultSchedule(MTTKRP, 2)
	if m.AFormat.Order() != 3 {
		t.Fatal("MTTKRP default format order")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConcordantSchedule(t *testing.T) {
	// Column-major format: outermost level is the reduction mode k for SpMM,
	// so the concordant schedule must fall back to serial.
	ss := ConcordantSchedule(SpMM, format.CSC(), 4, 32)
	if err := ss.Validate(); err != nil {
		t.Fatal(err)
	}
	if ss.Threads != 1 {
		t.Fatalf("CSC concordant SpMM should be serial, got %d threads", ss.Threads)
	}
	// Row-major stays parallel.
	ss2 := ConcordantSchedule(SpMM, format.CSR(), 4, 32)
	if ss2.Threads != 4 {
		t.Fatalf("CSR concordant should keep threads, got %d", ss2.Threads)
	}
	for l, v := range ss2.ComputeOrder {
		lv := ss2.AFormat.Levels[l]
		if v.Mode != lv.Mode || v.Inner != lv.Inner {
			t.Fatal("concordant order does not follow level order")
		}
	}
}

func TestMutatePreservesValidity(t *testing.T) {
	for _, alg := range Algorithms {
		sp := DefaultSpace(alg)
		rng := rand.New(rand.NewSource(11))
		ss := sp.Sample(rng)
		for step := 0; step < 300; step++ {
			ss = sp.Mutate(rng, ss)
			if err := ss.Validate(); err != nil {
				t.Fatalf("%v step %d: %v\n%s", alg, step, err, ss)
			}
		}
	}
}

func TestMutateDoesNotAliasOriginal(t *testing.T) {
	sp := DefaultSpace(SpMM)
	rng := rand.New(rand.NewSource(12))
	ss := sp.Sample(rng)
	key := ss.String()
	for i := 0; i < 50; i++ {
		sp.Mutate(rng, ss)
		if ss.String() != key {
			t.Fatal("Mutate modified the original schedule")
		}
	}
}

func TestEncodeShape(t *testing.T) {
	for _, alg := range Algorithms {
		sp := DefaultSpace(alg)
		rng := rand.New(rand.NewSource(13))
		ss := sp.Sample(rng)
		e := sp.Encode(ss)
		sizes := sp.CatSizes()
		if len(e.Cats) != len(sizes) {
			t.Fatalf("%v: %d cats, want %d", alg, len(e.Cats), len(sizes))
		}
		for i, c := range e.Cats {
			if c < 0 || c >= sizes[i] {
				t.Fatalf("%v: cat %d = %d outside [0,%d)", alg, i, c, sizes[i])
			}
		}
		psizes := sp.PermSizes()
		if len(e.Perms) != len(psizes) {
			t.Fatalf("%v: %d perms", alg, len(e.Perms))
		}
		for i, p := range e.Perms {
			if len(p) != psizes[i] {
				t.Fatalf("%v: perm %d size %d, want %d", alg, i, len(p), psizes[i])
			}
			seen := make([]bool, len(p))
			for _, x := range p {
				if x < 0 || x >= len(p) || seen[x] {
					t.Fatalf("%v: perm %d = %v is not a permutation", alg, i, p)
				}
				seen[x] = true
			}
		}
	}
}

func TestEncodeDistinguishesSchedules(t *testing.T) {
	sp := DefaultSpace(SpMM)
	rng := rand.New(rand.NewSource(14))
	a := sp.Sample(rng)
	b := a.Clone()
	b.Chunk = a.Chunk*2 + 1
	ea, eb := sp.Encode(a), sp.Encode(b)
	same := true
	for i := range ea.Cats {
		if ea.Cats[i] != eb.Cats[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different chunk sizes produced identical encodings")
	}
}

func TestEncodeSnapsOutOfSpaceValues(t *testing.T) {
	sp := DefaultSpace(SpMV)
	ss := DefaultSchedule(SpMV, 999) // threads not in choice set
	e := sp.Encode(ss)
	tIdx := sp.Alg.SparseOrder() + 2*sp.Alg.SparseOrder() + 1
	if got := e.Cats[tIdx]; got != len(sp.ThreadChoices)-1 {
		t.Fatalf("thread snap index %d, want %d", got, len(sp.ThreadChoices)-1)
	}
}

func TestQuickSampleEncodeAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alg := Algorithms[rng.Intn(len(Algorithms))]
		sp := DefaultSpace(alg)
		ss := sp.Sample(rng)
		if ss.Validate() != nil {
			return false
		}
		e := sp.Encode(ss)
		return len(e.Cats) == len(sp.CatSizes()) && len(e.Perms) == 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStringIsCanonicalKey(t *testing.T) {
	sp := DefaultSpace(SpMM)
	rng := rand.New(rand.NewSource(15))
	a := sp.Sample(rng)
	if a.String() != a.Clone().String() {
		t.Fatal("clone changes key")
	}
	b := sp.Sample(rng)
	if a.String() == b.String() {
		t.Log("two random samples collided (possible but unlikely); resampling")
		b = sp.Sample(rng)
		if a.String() == b.String() {
			t.Fatal("schedule keys not distinguishing")
		}
	}
}
