package schedule

import (
	"math/rand"

	"waco/internal/format"
)

// Space is the set of parameter choices a SuperSchedule is drawn from — the
// reproduction of Table 3, with the choice sets configurable so reduced-scale
// runs stay tractable.
type Space struct {
	Alg Algorithm
	// SplitChoices are the candidate inner split sizes (paper: 1..32768 in
	// powers of two).
	SplitChoices []int32
	// ThreadChoices are candidate worker counts (paper: {24, 48}).
	ThreadChoices []int
	// ChunkChoices are candidate dynamic chunk sizes (paper: 1..256).
	ChunkChoices []int
	// DecompChoices are the candidate format decompositions. Empty means
	// {DecompNone}: spaces gob-decoded from pre-decomposition artifacts carry
	// no choices, and must keep sampling and encoding exactly as before.
	DecompChoices []Decomposition
}

// decompChoices normalizes DecompChoices for samplers and encoders: legacy
// artifacts decode an empty slice, which means the single-format space.
func (sp Space) decompChoices() []Decomposition {
	if len(sp.DecompChoices) == 0 {
		return []Decomposition{DecompNone}
	}
	return sp.DecompChoices
}

// DefaultSpace returns a reduced-scale space suited to the synthetic corpus:
// splits to 4096, threads {1, 2, 4, 8}, chunks 1..256 in powers of two.
func DefaultSpace(alg Algorithm) Space {
	return Space{
		Alg:           alg,
		SplitChoices:  []int32{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096},
		ThreadChoices: []int{1, 2, 4, 8},
		ChunkChoices:  []int{1, 2, 4, 8, 16, 32, 64, 128, 256},
		DecompChoices: DecompositionChoices(alg),
	}
}

// PaperSpace returns the full Table 3 choice sets.
func PaperSpace(alg Algorithm) Space {
	splits := make([]int32, 0, 16)
	for s := int32(1); s <= 32768; s *= 2 {
		splits = append(splits, s)
	}
	chunks := make([]int, 0, 9)
	for c := 1; c <= 256; c *= 2 {
		chunks = append(chunks, c)
	}
	return Space{
		Alg:           alg,
		SplitChoices:  splits,
		ThreadChoices: []int{24, 48},
		ChunkChoices:  chunks,
		DecompChoices: DecompositionChoices(alg),
	}
}

// Sample draws one valid SuperSchedule uniformly (up to the validity
// constraints: the parallelized variable is moved to the outermost loop).
func (sp Space) Sample(rng *rand.Rand) *SuperSchedule {
	n := sp.Alg.SparseOrder()
	ss := &SuperSchedule{Alg: sp.Alg}

	// Format schedule: splits, level order, level kinds.
	f := format.Format{Splits: make([]int32, n)}
	for m := 0; m < n; m++ {
		f.Splits[m] = sp.SplitChoices[rng.Intn(len(sp.SplitChoices))]
	}
	f.Levels = make([]format.Level, 0, 2*n)
	for _, v := range AllIVars(sp.Alg) {
		f.Levels = append(f.Levels, format.Level{
			Mode:  v.Mode,
			Inner: v.Inner,
			Kind:  format.LevelKind(rng.Intn(2)),
		})
	}
	rng.Shuffle(len(f.Levels), func(a, b int) { f.Levels[a], f.Levels[b] = f.Levels[b], f.Levels[a] })
	ss.AFormat = f

	// Compute schedule: loop order with the parallel variable outermost.
	order := AllIVars(sp.Alg)
	rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
	par := sp.sampleParallelVar(rng)
	for i, v := range order {
		if v == par {
			copy(order[1:i+1], order[:i])
			order[0] = par
			break
		}
	}
	ss.ComputeOrder = order
	ss.Parallel = par
	ss.Threads = sp.ThreadChoices[rng.Intn(len(sp.ThreadChoices))]
	ss.Chunk = sp.ChunkChoices[rng.Intn(len(sp.ChunkChoices))]
	if sp.Alg == SpMV {
		ss.BLayout = VecLayout(rng.Intn(2))
		ss.CLayout = VecLayout(rng.Intn(2))
	}
	// Drawn last so spaces without decomposition choices consume the same
	// random sequence as before the dimension existed.
	if dc := sp.decompChoices(); len(dc) > 1 {
		ss.Decomp = dc[rng.Intn(len(dc))]
	}
	return ss
}

func (sp Space) sampleParallelVar(rng *rand.Rand) IVar {
	modes := sp.Alg.ParallelizableModes()
	return IVar{Mode: modes[rng.Intn(len(modes))], Inner: rng.Intn(2) == 1}
}

// SampleConcordant draws a random format schedule but pairs it with a
// traversal concordant with the format's level order (hoisting a
// parallelizable variable when the root level is a reduction). Dataset
// collection mixes these in because, at reduced sample budgets, uniformly
// random loop orders are dominated by heavily discordant configurations,
// leaving the index without the well-matched schedules TACO users actually
// run; the paper's 100-samples-per-matrix budget covers them by volume.
func (sp Space) SampleConcordant(rng *rand.Rand) *SuperSchedule {
	ss := sp.Sample(rng)
	out := BestEffortSchedule(sp.Alg, ss.AFormat, ss.Threads, ss.Chunk)
	out.BLayout, out.CLayout = ss.BLayout, ss.CLayout
	out.Decomp = ss.Decomp
	return out
}

// Mutate returns a copy of ss with one randomly chosen parameter re-drawn;
// used by the simulated-annealing and TPE baselines.
func (sp Space) Mutate(rng *rand.Rand, ss *SuperSchedule) *SuperSchedule {
	out := ss.Clone()
	n := sp.Alg.SparseOrder()
	nKnobs := 8
	if len(sp.decompChoices()) > 1 {
		nKnobs = 9
	}
	switch rng.Intn(nKnobs) {
	case 0: // one split size
		m := rng.Intn(n)
		out.AFormat.Splits[m] = sp.SplitChoices[rng.Intn(len(sp.SplitChoices))]
	case 1: // swap two storage levels
		a, b := rng.Intn(2*n), rng.Intn(2*n)
		out.AFormat.Levels[a], out.AFormat.Levels[b] = out.AFormat.Levels[b], out.AFormat.Levels[a]
	case 2: // flip one level kind
		l := rng.Intn(2 * n)
		out.AFormat.Levels[l].Kind ^= 1
	case 3: // swap two non-outermost compute loops
		if 2*n > 2 {
			a, b := 1+rng.Intn(2*n-1), 1+rng.Intn(2*n-1)
			out.ComputeOrder[a], out.ComputeOrder[b] = out.ComputeOrder[b], out.ComputeOrder[a]
		}
	case 4: // new parallel variable
		par := sp.sampleParallelVar(rng)
		for i, v := range out.ComputeOrder {
			if v == par {
				copy(out.ComputeOrder[1:i+1], out.ComputeOrder[:i])
				out.ComputeOrder[0] = par
				break
			}
		}
		out.Parallel = par
	case 5:
		out.Threads = sp.ThreadChoices[rng.Intn(len(sp.ThreadChoices))]
	case 6:
		out.Chunk = sp.ChunkChoices[rng.Intn(len(sp.ChunkChoices))]
	case 7:
		if sp.Alg == SpMV {
			if rng.Intn(2) == 0 {
				out.BLayout ^= 1
			} else {
				out.CLayout ^= 1
			}
		}
	case 8: // re-draw the decomposition
		dc := sp.decompChoices()
		out.Decomp = dc[rng.Intn(len(dc))]
	}
	return out
}

// DefaultSchedule returns the paper's Fixed CSR baseline configuration: CSR
// (CSF for MTTKRP) storage with a concordant row-parallel traversal, the
// given worker count, and the paper's per-algorithm OpenMP chunk sizes
// (128 for SpMV; 32 for SpMM, SDDMM, MTTKRP).
func DefaultSchedule(alg Algorithm, threads int) *SuperSchedule {
	n := alg.SparseOrder()
	f := format.Format{Splits: make([]int32, n)}
	for m := range f.Splits {
		f.Splits[m] = 1
	}
	// Outer levels in mode order; mode 0 Uncompressed, deeper modes
	// Compressed (CSR for matrices, CSF-like for 3-D); trailing inner levels
	// Uncompressed.
	for m := 0; m < n; m++ {
		kind := format.Compressed
		if m == 0 {
			kind = format.Uncompressed
		}
		f.Levels = append(f.Levels, format.Level{Mode: m, Kind: kind})
	}
	for m := 0; m < n; m++ {
		f.Levels = append(f.Levels, format.Level{Mode: m, Inner: true, Kind: format.Uncompressed})
	}
	chunk := 32
	if alg == SpMV {
		chunk = 128
	}
	order := make([]IVar, 0, 2*n)
	for m := 0; m < n; m++ {
		order = append(order, IVar{Mode: m})
	}
	for m := 0; m < n; m++ {
		order = append(order, IVar{Mode: m, Inner: true})
	}
	return &SuperSchedule{
		Alg:          alg,
		AFormat:      f,
		ComputeOrder: order,
		Parallel:     IVar{Mode: 0},
		Threads:      threads,
		Chunk:        chunk,
	}
}

// BestEffortSchedule returns a schedule that follows the format's level
// order but hoists a parallelizable variable to the outermost loop when the
// format's own root level cannot be parallelized (e.g. a column-major format
// for SpMM, whose root is the reduction dimension). Hoisting makes the
// traversal discordant at the hoisted variable's level: if that level is
// Uncompressed the induced locates are cheap arithmetic, but on a Compressed
// level each iteration would pay a binary search, so the schedule stays
// concordant and serial instead. This is the schedule policy the format-only
// baselines use.
func BestEffortSchedule(alg Algorithm, f format.Format, threads, chunk int) *SuperSchedule {
	ss := ConcordantSchedule(alg, f, threads, chunk)
	if ss.Threads == threads {
		return ss
	}
	par := IVar{Mode: alg.ParallelizableModes()[0]}
	for _, l := range f.Levels {
		if l.Mode == par.Mode && l.Inner == par.Inner && l.Kind == format.Compressed {
			return ss // hoisting would binary-search this level per iteration
		}
	}
	order := ss.ComputeOrder
	for i, v := range order {
		if v == par {
			copy(order[1:i+1], order[:i])
			order[0] = par
			break
		}
	}
	ss.Parallel = par
	ss.Threads = threads
	return ss
}

// ConcordantSchedule returns a schedule whose traversal order follows the
// given format's level order (the paper's format-only tuning baseline).
// When the format's outermost level is not parallelizable the schedule runs
// serially.
func ConcordantSchedule(alg Algorithm, f format.Format, threads, chunk int) *SuperSchedule {
	order := make([]IVar, 0, len(f.Levels))
	for _, l := range f.Levels {
		order = append(order, IVar{Mode: l.Mode, Inner: l.Inner})
	}
	ss := &SuperSchedule{
		Alg:          alg,
		AFormat:      f.Clone(),
		ComputeOrder: order,
		Parallel:     order[0],
		Threads:      threads,
		Chunk:        chunk,
	}
	parallelizable := false
	for _, m := range alg.ParallelizableModes() {
		if order[0].Mode == m {
			parallelizable = true
		}
	}
	if !parallelizable {
		ss.Threads = 1
	}
	return ss
}
