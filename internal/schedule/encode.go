package schedule

// Encoded is the embedder-facing encoding of a SuperSchedule (Figure 11 of
// the paper): every categorical parameter becomes a choice index into a
// learnable lookup table, and every permutation parameter becomes an explicit
// permutation (later expanded into a permutation matrix by the embedder).
type Encoded struct {
	// Cats[i] indexes into a categorical table of size Space.CatSizes()[i].
	Cats []int
	// Perms[i] is a permutation of size Space.PermSizes()[i]: Perms[i][p] is
	// the canonical index of the variable placed at position p.
	Perms [][]int
}

// CatSizes returns the cardinalities of the categorical parameters in
// encoding order: per-mode split, per-level kind, parallel variable, threads,
// chunk, (SpMV only) the two vector layouts, and — only when the space
// declares decomposition choices — the decomposition. Spaces gob-decoded from
// pre-decomposition artifacts have no choices and must produce the exact
// encoding their persisted embedder weights were trained against; appending
// even a size-1 table would change the fuse-layer width and reject the load.
func (sp Space) CatSizes() []int {
	n := sp.Alg.SparseOrder()
	sizes := make([]int, 0, 3*n+6)
	for m := 0; m < n; m++ {
		sizes = append(sizes, len(sp.SplitChoices))
	}
	for l := 0; l < 2*n; l++ {
		sizes = append(sizes, 2)
	}
	sizes = append(sizes, 2*n, len(sp.ThreadChoices), len(sp.ChunkChoices))
	if sp.Alg == SpMV {
		sizes = append(sizes, 2, 2)
	}
	if len(sp.DecompChoices) > 0 {
		sizes = append(sizes, len(sp.DecompChoices))
	}
	return sizes
}

// PermSizes returns the sizes of the permutation parameters: the compute
// loop order and A's level order, both over the 2*order split variables.
func (sp Space) PermSizes() []int {
	n := sp.Alg.SparseOrder()
	return []int{2 * n, 2 * n}
}

// canonicalIndex maps an IVar to its position in AllIVars order.
func canonicalIndex(v IVar) int {
	idx := 2 * v.Mode
	if v.Inner {
		idx++
	}
	return idx
}

// Encode converts a SuperSchedule into its categorical/permutation encoding.
// Parameter values outside the space's choice sets snap to the nearest
// choice, so hand-built schedules (e.g. baselines) remain encodable.
func (sp Space) Encode(ss *SuperSchedule) Encoded {
	n := sp.Alg.SparseOrder()
	var e Encoded
	for m := 0; m < n; m++ {
		e.Cats = append(e.Cats, nearestIndex32(sp.SplitChoices, ss.AFormat.Splits[m]))
	}
	// Level kinds in canonical variable order, independent of level order.
	kinds := make([]int, 2*n)
	for _, l := range ss.AFormat.Levels {
		kinds[canonicalIndex(IVar{Mode: l.Mode, Inner: l.Inner})] = int(l.Kind)
	}
	e.Cats = append(e.Cats, kinds...)
	e.Cats = append(e.Cats,
		canonicalIndex(ss.Parallel),
		nearestIndexInt(sp.ThreadChoices, ss.Threads),
		nearestIndexInt(sp.ChunkChoices, ss.Chunk),
	)
	if sp.Alg == SpMV {
		e.Cats = append(e.Cats, int(ss.BLayout), int(ss.CLayout))
	}
	if len(sp.DecompChoices) > 0 {
		e.Cats = append(e.Cats, sp.decompIndex(ss.Decomp))
	}

	loop := make([]int, 2*n)
	for p, v := range ss.ComputeOrder {
		loop[p] = canonicalIndex(v)
	}
	level := make([]int, 2*n)
	for p, l := range ss.AFormat.Levels {
		level[p] = canonicalIndex(IVar{Mode: l.Mode, Inner: l.Inner})
	}
	e.Perms = [][]int{loop, level}
	return e
}

// decompIndex returns the choice index of a decomposition, snapping unknown
// values to DecompNone (index 0 by construction) so schedules drawn from a
// widened space stay encodable against a legacy single-choice space.
func (sp Space) decompIndex(d Decomposition) int {
	for i, c := range sp.decompChoices() {
		if c == d {
			return i
		}
	}
	return 0
}

func nearestIndex32(choices []int32, v int32) int {
	best, bestDiff := 0, int64(1)<<62
	for i, c := range choices {
		d := int64(c) - int64(v)
		if d < 0 {
			d = -d
		}
		if d < bestDiff {
			best, bestDiff = i, d
		}
	}
	return best
}

func nearestIndexInt(choices []int, v int) int {
	best, bestDiff := 0, int(1)<<62
	for i, c := range choices {
		d := c - v
		if d < 0 {
			d = -d
		}
		if d < bestDiff {
			best, bestDiff = i, d
		}
	}
	return best
}
