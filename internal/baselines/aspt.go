package baselines

import (
	"fmt"
	"sort"
	"time"

	"waco/internal/kernel"
	"waco/internal/schedule"
	"waco/internal/tensor"
)

// ASpT is the adaptive-sparse-tiling baseline (Hong et al., PPoPP 2019): an
// inspector partitions the matrix into row panels and, within each panel,
// separates "dense" columns (columns with enough nonzeros in the panel to
// reward reuse) from the sparse remainder. The executor processes the dense
// tiles with panel-wide reuse of the dense operand's rows and the remainder
// with a CSR-style loop. Like the released artifact, it supports SpMM and
// SDDMM only.
type ASpT struct {
	PanelRows int     // rows per panel (default 64)
	Threshold float64 // fraction of panel rows a column needs to be "dense" (default 0.25)
}

// NewASpT returns the baseline with its default tiling parameters.
func NewASpT() *ASpT { return &ASpT{PanelRows: 64, Threshold: 0.25} }

// Name implements Method.
func (*ASpT) Name() string { return "ASpT" }

// Supports implements Method.
func (*ASpT) Supports(alg schedule.Algorithm) bool {
	return alg == schedule.SpMM || alg == schedule.SDDMM
}

// asptPanel is one row panel after inspection.
type asptPanel struct {
	row0, rowCount int
	denseCols      []int32
	dense          []float32 // rowCount x len(denseCols), row-major, explicit zeros
	denseRowIdx    []int32   // SDDMM: original row per panel row (== row0+r)
	rowPtr         []int32   // sparse remainder, per panel row
	colIdx         []int32
	vals           []float32
}

// asptMatrix is the inspected representation.
type asptMatrix struct {
	rows, cols int
	panels     []asptPanel
}

// inspect builds the tiled representation. This is ASpT's format-conversion
// cost.
func (a *ASpT) inspect(c *tensor.COO) *asptMatrix {
	csr, err := c.Clone().ToCSR()
	if err != nil {
		return nil
	}
	panelRows := a.PanelRows
	if panelRows < 1 {
		panelRows = 64
	}
	m := &asptMatrix{rows: csr.NumRows, cols: csr.NumCols}
	colCount := make([]int32, csr.NumCols)
	for row0 := 0; row0 < csr.NumRows; row0 += panelRows {
		rowCount := panelRows
		if row0+rowCount > csr.NumRows {
			rowCount = csr.NumRows - row0
		}
		p := asptPanel{row0: row0, rowCount: rowCount}
		// Count nonzeros per column within the panel.
		var touched []int32
		for r := row0; r < row0+rowCount; r++ {
			cols, _ := csr.Row(r)
			for _, cix := range cols {
				if colCount[cix] == 0 {
					touched = append(touched, cix)
				}
				colCount[cix]++
			}
		}
		thresh := int32(a.Threshold * float64(rowCount))
		if thresh < 2 {
			thresh = 2
		}
		for _, cix := range touched {
			if colCount[cix] >= thresh {
				p.denseCols = append(p.denseCols, cix)
			}
		}
		sort.Slice(p.denseCols, func(x, y int) bool { return p.denseCols[x] < p.denseCols[y] })
		denseSet := make(map[int32]int32, len(p.denseCols))
		for i, cix := range p.denseCols {
			denseSet[cix] = int32(i)
		}
		nd := len(p.denseCols)
		p.dense = make([]float32, rowCount*nd)
		p.rowPtr = make([]int32, rowCount+1)
		for r := 0; r < rowCount; r++ {
			cols, vals := csr.Row(row0 + r)
			for q, cix := range cols {
				if di, ok := denseSet[cix]; ok {
					p.dense[r*nd+int(di)] = vals[q]
				} else {
					p.colIdx = append(p.colIdx, cix)
					p.vals = append(p.vals, vals[q])
				}
			}
			p.rowPtr[r+1] = int32(len(p.colIdx))
		}
		// Reset counters.
		for _, cix := range touched {
			colCount[cix] = 0
		}
		m.panels = append(m.panels, p)
	}
	return m
}

// spmm computes out = A*b using the tiled representation, parallel over
// panels.
func (m *asptMatrix) spmm(b, out *tensor.Dense, threads int) {
	out.Zero()
	kernel.ParallelFor(int64(len(m.panels)), 1, threads, func(_ int, lo, hi int64) {
		for pi := lo; pi < hi; pi++ {
			p := &m.panels[pi]
			nd := len(p.denseCols)
			// Dense tiles: iterate panel rows; the B rows of the panel's
			// dense columns stay hot across the whole panel.
			for r := 0; r < p.rowCount; r++ {
				or := out.Row(p.row0 + r)
				drow := p.dense[r*nd : (r+1)*nd]
				for ci, v := range drow {
					if v == 0 {
						continue
					}
					br := b.Row(int(p.denseCols[ci]))
					for j := range or {
						or[j] += v * br[j]
					}
				}
				// Sparse remainder.
				for q := p.rowPtr[r]; q < p.rowPtr[r+1]; q++ {
					v := p.vals[q]
					br := b.Row(int(p.colIdx[q]))
					for j := range or {
						or[j] += v * br[j]
					}
				}
			}
		}
	})
}

// sddmm computes, for each stored nonzero at (i, j),
// val * (B[i,:] . C[:,j]) with ct = C^T, writing into per-panel outputs.
func (m *asptMatrix) sddmm(b, ct *tensor.Dense, outs [][]float32, threads int) {
	kernel.ParallelFor(int64(len(m.panels)), 1, threads, func(_ int, lo, hi int64) {
		for pi := lo; pi < hi; pi++ {
			p := &m.panels[pi]
			out := outs[pi]
			nd := len(p.denseCols)
			k := b.NumCols
			for r := 0; r < p.rowCount; r++ {
				br := b.Row(p.row0 + r)
				drow := p.dense[r*nd : (r+1)*nd]
				for ci, v := range drow {
					if v == 0 {
						continue
					}
					cr := ct.Row(int(p.denseCols[ci]))
					var acc float32
					for q := 0; q < k; q++ {
						acc += br[q] * cr[q]
					}
					out[r*nd+ci] = v * acc
				}
				for q := p.rowPtr[r]; q < p.rowPtr[r+1]; q++ {
					cr := ct.Row(int(p.colIdx[q]))
					var acc float32
					for x := 0; x < k; x++ {
						acc += br[x] * cr[x]
					}
					out[len(p.dense)+int(q)] = p.vals[q] * acc
				}
			}
		}
	})
}

// Tune implements Method: inspection is the conversion cost; there is no
// search (fixed implementation).
func (a *ASpT) Tune(wl *kernel.Workload, profile kernel.MachineProfile, cfg Config) (*Tuned, error) {
	if !a.Supports(wl.Alg) {
		return nil, fmt.Errorf("baselines: ASpT does not support %v", wl.Alg)
	}
	t0 := time.Now()
	m := a.inspect(wl.COO)
	if m == nil {
		return nil, fmt.Errorf("baselines: ASpT inspection failed")
	}
	convert := time.Since(t0)
	threads := profileThreads(profile)

	var runs []time.Duration
	repeats := maxI(1, cfg.Repeats)
	switch wl.Alg {
	case schedule.SpMM:
		out := tensor.NewDense(wl.COO.Dims[0], wl.BMat().NumCols)
		for r := 0; r < repeats; r++ {
			start := time.Now()
			m.spmm(wl.BMat(), out, threads)
			runs = append(runs, time.Since(start))
		}
	case schedule.SDDMM:
		outs := make([][]float32, len(m.panels))
		for i := range outs {
			p := &m.panels[i]
			outs[i] = make([]float32, len(p.dense)+len(p.vals))
		}
		for r := 0; r < repeats; r++ {
			start := time.Now()
			m.sddmm(wl.BMat(), wl.CMat(), outs, threads)
			runs = append(runs, time.Since(start))
		}
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i] < runs[j] })
	return &Tuned{
		Method:         "ASpT",
		KernelSeconds:  runs[len(runs)/2].Seconds(),
		ConvertSeconds: convert.Seconds(),
		Info:           fmt.Sprintf("panels=%d", len(m.panels)),
	}, nil
}

// SpMMInto exposes the tiled SpMM for correctness tests.
func (a *ASpT) SpMMInto(c *tensor.COO, b, out *tensor.Dense, threads int) error {
	m := a.inspect(c)
	if m == nil {
		return fmt.Errorf("baselines: ASpT inspection failed")
	}
	m.spmm(b, out, threads)
	return nil
}
