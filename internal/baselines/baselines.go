// Package baselines implements the four comparison systems of the paper's
// evaluation (§5.1): Fixed CSR (TACO's default format and schedule), an
// Intel-MKL-style inspector–executor that auto-tunes the schedule on a fixed
// CSR format, BestFormat (a learned classifier choosing among a handful of
// candidate formats), and ASpT (adaptive sparse tiling). Each reports its
// tuned kernel time along with its tuning and format-conversion costs so the
// overhead experiments (Figure 17, Table 8) can account for them.
package baselines

import (
	"fmt"
	"time"

	"waco/internal/kernel"
	"waco/internal/schedule"
)

// Config controls baseline measurement.
type Config struct {
	Repeats    int   // runs per final measurement (median)
	MaxEntries int64 // assembly budget (0 = default)
}

// DefaultConfig uses 5 repetitions.
func DefaultConfig() Config { return Config{Repeats: 5} }

// Measurement is one candidate actually timed during tuning: the schedule
// and its probe runtime. Tuners that race several candidates expose every
// measurement, not just the winner — each one is a (pattern, schedule,
// runtime) training triple the online learning loop would otherwise lose.
type Measurement struct {
	Schedule *schedule.SuperSchedule
	Seconds  float64
}

// Tuned is the outcome of one baseline on one workload.
type Tuned struct {
	Method         string
	KernelSeconds  float64 // median tuned-kernel runtime
	TuningSeconds  float64 // inspector / classifier / search cost
	ConvertSeconds float64 // format conversion (assembly) cost
	Schedule       *schedule.SuperSchedule
	Info           string
	// Measured holds every candidate timed while tuning (empty for
	// baselines that only run their single fixed choice).
	Measured []Measurement
}

// Method is a tunable sparse-kernel implementation.
type Method interface {
	Name() string
	Supports(alg schedule.Algorithm) bool
	Tune(wl *kernel.Workload, profile kernel.MachineProfile, cfg Config) (*Tuned, error)
}

// FixedCSR is the paper's fixed-implementation baseline: CSR (CSF for
// MTTKRP) with TACO's default schedule — row-parallel, OpenMP chunk 128 for
// SpMV and 32 otherwise.
type FixedCSR struct{}

// Name implements Method.
func (FixedCSR) Name() string { return "FixedCSR" }

// Supports implements Method: all four algorithms.
func (FixedCSR) Supports(schedule.Algorithm) bool { return true }

// Tune implements Method. There is no tuning; conversion time is the CSR
// assembly.
func (FixedCSR) Tune(wl *kernel.Workload, profile kernel.MachineProfile, cfg Config) (*Tuned, error) {
	ss := schedule.DefaultSchedule(wl.Alg, profile.ThreadCap)
	t0 := time.Now()
	plan, err := wl.Compile(ss, profile, cfg.MaxEntries)
	if err != nil {
		return nil, fmt.Errorf("baselines: FixedCSR: %w", err)
	}
	convert := time.Since(t0)
	med, err := wl.Measure(plan, cfg.Repeats)
	if err != nil {
		return nil, err
	}
	return &Tuned{
		Method:         "FixedCSR",
		KernelSeconds:  med.Seconds(),
		ConvertSeconds: convert.Seconds(),
		Schedule:       ss,
	}, nil
}

// MKLLike is the inspector–executor baseline: the format is pinned to CSR
// (the paper notes MKL "limits the tuning space by fixing the format"), and
// the inspector probes schedule-only variants — chunk sizes and worker
// counts — picking the fastest. Like MKL's sparse BLAS it covers only SpMV
// and SpMM.
type MKLLike struct {
	Chunks  []int
	Threads []int
}

// NewMKLLike returns the inspector with its default probe grid.
func NewMKLLike() *MKLLike {
	return &MKLLike{Chunks: []int{8, 32, 128, 256}, Threads: []int{0, -2}} // 0 = profile cap, -2 = cap/2
}

// Name implements Method.
func (*MKLLike) Name() string { return "MKL" }

// Supports implements Method.
func (*MKLLike) Supports(alg schedule.Algorithm) bool {
	return alg == schedule.SpMV || alg == schedule.SpMM
}

// Tune implements Method: the inspection cost (probing) is the tuning time;
// conversion is free because the input is assumed to arrive in CSR.
func (m *MKLLike) Tune(wl *kernel.Workload, profile kernel.MachineProfile, cfg Config) (*Tuned, error) {
	if !m.Supports(wl.Alg) {
		return nil, fmt.Errorf("baselines: MKL does not support %v", wl.Alg)
	}
	base := schedule.DefaultSchedule(wl.Alg, profile.ThreadCap)
	plan, err := wl.Compile(base, profile, cfg.MaxEntries)
	if err != nil {
		return nil, err
	}
	tuneStart := time.Now()
	best := base
	bestTime, err := wl.Measure(plan, 1)
	if err != nil {
		return nil, err
	}
	cap := profile.ThreadCap
	if cap <= 0 {
		cap = base.Threads
	}
	for _, th := range m.Threads {
		threads := cap
		if th == -2 {
			threads = cap / 2
		}
		if threads < 1 {
			threads = 1
		}
		for _, chunk := range m.Chunks {
			cand := base.Clone()
			cand.Threads = threads
			cand.Chunk = chunk
			p, err := kernelCompile(wl, cand, profile, cfg)
			if err != nil {
				return nil, err
			}
			d, err := wl.Measure(p, 1)
			if err != nil {
				return nil, err
			}
			if d < bestTime {
				bestTime, best = d, cand
			}
		}
	}
	tuning := time.Since(tuneStart)
	finalPlan, err := kernelCompile(wl, best, profile, cfg)
	if err != nil {
		return nil, err
	}
	med, err := wl.Measure(finalPlan, cfg.Repeats)
	if err != nil {
		return nil, err
	}
	return &Tuned{
		Method:        "MKL",
		KernelSeconds: med.Seconds(),
		TuningSeconds: tuning.Seconds(),
		Schedule:      best,
		Info:          fmt.Sprintf("chunk=%d threads=%d", best.Chunk, best.Threads),
	}, nil
}

func kernelCompile(wl *kernel.Workload, ss *schedule.SuperSchedule, profile kernel.MachineProfile, cfg Config) (kernel.Executable, error) {
	return wl.Compile(ss, profile, cfg.MaxEntries)
}
