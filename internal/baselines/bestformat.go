package baselines

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"waco/internal/format"
	"waco/internal/generate"
	"waco/internal/kernel"
	"waco/internal/nn"
	"waco/internal/schedule"
	"waco/internal/tensor"
)

// NamedFormat pairs a candidate format with a display name.
type NamedFormat struct {
	Name string
	F    format.Format
}

// CandidateFormats returns the handful of formats the BestFormat baseline
// chooses among — per the paper, a small set of frequently winning formats
// (five candidates), versus the tens of thousands WACO considers.
func CandidateFormats(alg schedule.Algorithm) []NamedFormat {
	if alg.SparseOrder() == 3 {
		return []NamedFormat{
			{"CSF(i,k,l)", csfOrdered([]int{0, 1, 2})},
			{"CSF(k,i,l)", csfOrdered([]int{1, 0, 2})},
			{"CSF(l,i,k)", csfOrdered([]int{2, 0, 1})},
			{"CSF(i,l,k)", csfOrdered([]int{0, 2, 1})},
			{"COO3", format.COOLike(3)},
		}
	}
	return []NamedFormat{
		{"CSR", format.CSR()},
		{"CSC", format.CSC()},
		{"BCSR4", format.BCSR(4, 4)},
		{"BCSR8", format.BCSR(8, 8)},
		{"SparseBlock256", sparseBlockFormat(256)},
	}
}

// csfOrdered builds a CSF-style format with outer levels in the given mode
// order (root Uncompressed, deeper levels Compressed, trailing unit inners).
func csfOrdered(modes []int) format.Format {
	f := format.Format{Splits: make([]int32, len(modes))}
	for m := range f.Splits {
		f.Splits[m] = 1
	}
	for i, m := range modes {
		kind := format.Compressed
		if i == 0 {
			kind = format.Uncompressed
		}
		f.Levels = append(f.Levels, format.Level{Mode: m, Kind: kind})
	}
	for _, m := range modes {
		f.Levels = append(f.Levels, format.Level{Mode: m, Inner: true, Kind: format.Uncompressed})
	}
	return f
}

// sparseBlockFormat is the §5.2.1 sparse-block layout k1(U) -> i(U) -> k0(C):
// splitting the reduction dimension with a Compressed inner level improves
// cache locality on the dense operand.
func sparseBlockFormat(split int32) format.Format {
	return format.Format{
		Splits: []int32{1, split},
		Levels: []format.Level{
			{Mode: 1, Kind: format.Uncompressed},
			{Mode: 0, Kind: format.Uncompressed},
			{Mode: 1, Inner: true, Kind: format.Compressed},
			{Mode: 0, Inner: true, Kind: format.Uncompressed},
		},
	}
}

// BestFormat is the format-selection baseline [42, 48]: a learned classifier
// maps a matrix's features to the best of a few candidate formats; the
// schedule stays as concordant as the chosen format allows. Tuning at query
// time is a single classifier inference — cheap, but the tuning space is
// format-only and tiny.
type BestFormat struct {
	Alg        schedule.Algorithm
	Candidates []NamedFormat
	clf        *nn.MLP
	trained    bool
}

// NewBestFormat creates an untrained classifier baseline.
func NewBestFormat(alg schedule.Algorithm, seed int64) *BestFormat {
	rng := rand.New(rand.NewSource(seed))
	cands := CandidateFormats(alg)
	return &BestFormat{
		Alg:        alg,
		Candidates: cands,
		clf:        nn.NewMLP("bestformat", []int{tensor.HumanFeatureDim, 32, len(cands)}, rng),
	}
}

// TrainConfig controls the offline classifier fit.
type TrainConfig struct {
	DenseN  int
	Repeats int
	Epochs  int
	LR      float32
	Seed    int64
	Profile kernel.MachineProfile
}

// Train labels each training matrix with its measured best candidate format
// and fits the softmax classifier. Matrices where every candidate fails to
// assemble are skipped.
func (b *BestFormat) Train(matrices []generate.Matrix, cfg TrainConfig) error {
	type example struct {
		feat  []float32
		label int
	}
	var examples []example
	mcfg := Config{Repeats: maxI(1, cfg.Repeats)}
	for _, m := range matrices {
		if m.COO.Order() != b.Alg.SparseOrder() {
			continue
		}
		wl, err := kernel.NewWorkload(b.Alg, m.COO, cfg.DenseN)
		if err != nil {
			return err
		}
		label, ok := b.measureBest(wl, cfg.Profile, mcfg)
		if !ok {
			continue
		}
		examples = append(examples, example{feat: tensor.ComputeStats(m.COO).FeatureVector(), label: label})
	}
	if len(examples) == 0 {
		return fmt.Errorf("baselines: no trainable matrices for BestFormat")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	opt := nn.NewAdam(cfg.LR, b.clf.Params()...)
	epochs := cfg.Epochs
	if epochs < 1 {
		epochs = 30
	}
	for e := 0; e < epochs; e++ {
		for _, i := range rng.Perm(len(examples)) {
			ex := examples[i]
			var tape nn.Tape
			logits := b.clf.Apply(&tape, nn.NewGrad(append([]float32(nil), ex.feat...)))
			softmaxCE(logits, ex.label)
			tape.Backward()
			opt.Step()
		}
	}
	b.trained = true
	return nil
}

// measureBest returns the index of the fastest assembling candidate.
func (b *BestFormat) measureBest(wl *kernel.Workload, profile kernel.MachineProfile, cfg Config) (int, bool) {
	best, bestTime := -1, time.Duration(math.MaxInt64)
	for i, cand := range b.Candidates {
		ss := schedule.BestEffortSchedule(b.Alg, cand.F, profileThreads(profile), 32)
		d, _, err := wl.MeasureSchedule(ss, profile, cfg.MaxEntries, cfg.Repeats)
		if err != nil {
			continue
		}
		if d < bestTime {
			best, bestTime = i, d
		}
	}
	return best, best >= 0
}

// Predict returns the classifier's format choice for a pattern.
func (b *BestFormat) Predict(c *tensor.COO) int {
	feat := tensor.ComputeStats(c).FeatureVector()
	logits := b.clf.Apply(nil, nn.NewGrad(feat))
	best, bestV := 0, float32(math.Inf(-1))
	for i, v := range logits.V {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// Name implements Method.
func (*BestFormat) Name() string { return "BestFormat" }

// Supports implements Method: all algorithms (given a matching-order model).
func (b *BestFormat) Supports(alg schedule.Algorithm) bool {
	return alg.SparseOrder() == b.Alg.SparseOrder()
}

// Tune implements Method: one classifier inference (tuning time), then
// conversion into the predicted format and measurement. Falls back to the
// first assembling candidate if the predicted one exceeds the storage
// budget.
func (b *BestFormat) Tune(wl *kernel.Workload, profile kernel.MachineProfile, cfg Config) (*Tuned, error) {
	if !b.trained {
		return nil, fmt.Errorf("baselines: BestFormat used before Train")
	}
	t0 := time.Now()
	choice := b.Predict(wl.COO)
	tuning := time.Since(t0)

	order := make([]int, 0, len(b.Candidates))
	order = append(order, choice)
	for i := range b.Candidates {
		if i != choice {
			order = append(order, i)
		}
	}
	for _, i := range order {
		cand := b.Candidates[i]
		ss := schedule.BestEffortSchedule(b.Alg, cand.F, profileThreads(profile), 32)
		t1 := time.Now()
		plan, err := wl.Compile(ss, profile, cfg.MaxEntries)
		if err != nil {
			continue
		}
		convert := time.Since(t1)
		med, err := wl.Measure(plan, cfg.Repeats)
		if err != nil {
			return nil, err
		}
		return &Tuned{
			Method:         "BestFormat",
			KernelSeconds:  med.Seconds(),
			TuningSeconds:  tuning.Seconds(),
			ConvertSeconds: convert.Seconds(),
			Schedule:       ss,
			Info:           cand.Name,
		}, nil
	}
	return nil, fmt.Errorf("baselines: no candidate format assembles")
}

// softmaxCE computes cross-entropy of softmax(logits) against the label,
// writing the gradient p - onehot into logits.D. Returns the loss.
func softmaxCE(logits *nn.Grad, label int) float32 {
	maxV := logits.V[0]
	for _, v := range logits.V {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for _, v := range logits.V {
		sum += math.Exp(float64(v - maxV))
	}
	logZ := math.Log(sum) + float64(maxV)
	for i, v := range logits.V {
		p := float32(math.Exp(float64(v) - logZ))
		logits.D[i] += p
	}
	logits.D[label] -= 1
	return float32(logZ - float64(logits.V[label]))
}

func profileThreads(p kernel.MachineProfile) int {
	if p.ThreadCap > 0 {
		return p.ThreadCap
	}
	return 4
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
