package baselines

import (
	"math"
	"math/rand"
	"testing"

	"waco/internal/generate"
	"waco/internal/kernel"
	"waco/internal/nn"
	"waco/internal/schedule"
	"waco/internal/tensor"
)

func testProfile() kernel.MachineProfile {
	return kernel.MachineProfile{Name: "test", ThreadCap: 2}
}

func testWorkload(t *testing.T, alg schedule.Algorithm, seed int64) *kernel.Workload {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var coo *tensor.COO
	if alg.SparseOrder() == 3 {
		base := generate.Uniform(rng, 48, 48, 300)
		coo = generate.Tensor3D(rng, base, 16, 2)
	} else {
		coo = generate.Uniform(rng, 96, 96, 800)
	}
	wl, err := kernel.NewWorkload(alg, coo, 8)
	if err != nil {
		t.Fatal(err)
	}
	return wl
}

func TestFixedCSRAllAlgorithms(t *testing.T) {
	for _, alg := range schedule.Algorithms {
		wl := testWorkload(t, alg, int64(alg)+1)
		tuned, err := (FixedCSR{}).Tune(wl, testProfile(), Config{Repeats: 2})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if tuned.KernelSeconds <= 0 {
			t.Fatalf("%v: kernel time %g", alg, tuned.KernelSeconds)
		}
		if tuned.TuningSeconds != 0 {
			t.Fatalf("%v: FixedCSR should have no tuning time", alg)
		}
		if err := tuned.Schedule.Validate(); err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
	}
}

func TestMKLLike(t *testing.T) {
	m := NewMKLLike()
	if m.Supports(schedule.SDDMM) || m.Supports(schedule.MTTKRP) {
		t.Fatal("MKL baseline must support only SpMV/SpMM")
	}
	for _, alg := range []schedule.Algorithm{schedule.SpMV, schedule.SpMM} {
		wl := testWorkload(t, alg, int64(alg)+10)
		tuned, err := m.Tune(wl, testProfile(), Config{Repeats: 2})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if tuned.KernelSeconds <= 0 || tuned.TuningSeconds <= 0 {
			t.Fatalf("%v: times %g/%g", alg, tuned.KernelSeconds, tuned.TuningSeconds)
		}
		// The format must remain CSR (schedule-only tuning).
		if !tuned.Schedule.AFormat.Equal(schedule.DefaultSchedule(alg, 2).AFormat) {
			t.Fatalf("%v: MKL changed the format", alg)
		}
	}
	wl := testWorkload(t, schedule.SDDMM, 20)
	if _, err := m.Tune(wl, testProfile(), Config{Repeats: 1}); err == nil {
		t.Fatal("MKL accepted SDDMM")
	}
}

func TestASpTSpMMCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	// A mix of dense columns and scattered entries exercises both paths.
	coo := generate.BlockDense(rng, 128, 128, 16, 10, 0.9)
	extra := generate.Uniform(rng, 128, 128, 500)
	for p := 0; p < extra.NNZ(); p++ {
		coo.Append(extra.Vals[p], extra.Coords[0][p], extra.Coords[1][p])
	}
	coo.SortRowMajor()
	coo.Dedup()

	b := tensor.NewDense(128, 16)
	b.FillIota()
	out := tensor.NewDense(128, 16)
	if err := NewASpT().SpMMInto(coo, b, out, 3); err != nil {
		t.Fatal(err)
	}
	ref := kernel.RefSpMM(coo, b)
	if d := out.MaxAbsDiff(ref); d > 2e-3 {
		t.Fatalf("ASpT SpMM differs from reference by %g", d)
	}
}

func TestASpTTune(t *testing.T) {
	a := NewASpT()
	if a.Supports(schedule.SpMV) || a.Supports(schedule.MTTKRP) {
		t.Fatal("ASpT must support only SpMM/SDDMM")
	}
	for _, alg := range []schedule.Algorithm{schedule.SpMM, schedule.SDDMM} {
		wl := testWorkload(t, alg, int64(alg)+40)
		tuned, err := a.Tune(wl, testProfile(), Config{Repeats: 2})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if tuned.KernelSeconds <= 0 || tuned.ConvertSeconds <= 0 {
			t.Fatalf("%v: times %+v", alg, tuned)
		}
	}
	if _, err := a.Tune(testWorkload(t, schedule.SpMV, 50), testProfile(), Config{Repeats: 1}); err == nil {
		t.Fatal("ASpT accepted SpMV")
	}
}

func TestASpTPanelEdgeCases(t *testing.T) {
	// Rows not divisible by panel size; empty rows; single dense column.
	c := tensor.NewCOO([]int{70, 8}, 0)
	for i := 0; i < 70; i += 2 {
		c.Append(float32(i+1), int32(i), 3) // column 3 dense in every panel
	}
	c.SortRowMajor()
	b := tensor.NewDense(8, 4)
	b.FillIota()
	out := tensor.NewDense(70, 4)
	if err := NewASpT().SpMMInto(c, b, out, 2); err != nil {
		t.Fatal(err)
	}
	ref := kernel.RefSpMM(c, b)
	if d := out.MaxAbsDiff(ref); d > 1e-4 {
		t.Fatalf("edge-case ASpT differs by %g", d)
	}
}

func trainedBestFormat(t *testing.T, alg schedule.Algorithm) *BestFormat {
	t.Helper()
	bf := NewBestFormat(alg, 7)
	cc := generate.DefaultCorpusConfig()
	cc.Count = 6
	cc.MinDim = 64
	cc.MaxDim = 128
	cc.MaxNNZ = 2000
	cfg := TrainConfig{DenseN: 8, Repeats: 1, Epochs: 10, LR: 1e-2, Seed: 8, Profile: testProfile()}
	if err := bf.Train(generate.Corpus(cc), cfg); err != nil {
		t.Fatal(err)
	}
	return bf
}

func TestBestFormatTrainAndTune(t *testing.T) {
	bf := trainedBestFormat(t, schedule.SpMM)
	wl := testWorkload(t, schedule.SpMM, 60)
	tuned, err := bf.Tune(wl, testProfile(), Config{Repeats: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tuned.KernelSeconds <= 0 {
		t.Fatal("no kernel time")
	}
	if tuned.Info == "" {
		t.Fatal("no chosen-format info")
	}
	if err := tuned.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
	// Prediction is stable and in range.
	p1 := bf.Predict(wl.COO)
	p2 := bf.Predict(wl.COO)
	if p1 != p2 || p1 < 0 || p1 >= len(bf.Candidates) {
		t.Fatalf("predictions %d, %d", p1, p2)
	}
}

func TestBestFormatUntrainedErrors(t *testing.T) {
	bf := NewBestFormat(schedule.SpMM, 1)
	wl := testWorkload(t, schedule.SpMM, 70)
	if _, err := bf.Tune(wl, testProfile(), Config{Repeats: 1}); err == nil {
		t.Fatal("untrained BestFormat tuned")
	}
}

func TestCandidateFormatsValid(t *testing.T) {
	for _, alg := range schedule.Algorithms {
		cands := CandidateFormats(alg)
		if len(cands) != 5 {
			t.Fatalf("%v: %d candidates, want 5", alg, len(cands))
		}
		for _, c := range cands {
			if err := c.F.Validate(); err != nil {
				t.Fatalf("%v %s: %v", alg, c.Name, err)
			}
			if c.F.Order() != alg.SparseOrder() {
				t.Fatalf("%v %s: wrong order", alg, c.Name)
			}
		}
	}
}

func TestBestEffortScheduleParallel(t *testing.T) {
	// SparseBlock (k1:U i1:U k0:C ...): the root is the reduction mode but
	// the row variable's level is Uncompressed, so hoisting keeps threads.
	ss := schedule.BestEffortSchedule(schedule.SpMM, CandidateFormats(schedule.SpMM)[4].F, 4, 32)
	if ss.Threads != 4 {
		t.Fatalf("sparse-block threads %d, want 4 (hoisted)", ss.Threads)
	}
	if err := ss.Validate(); err != nil {
		t.Fatal(err)
	}
	// CSC: the row variable's level is Compressed; hoisting would pay a
	// binary search per iteration, so the schedule stays concordant-serial.
	css := schedule.BestEffortSchedule(schedule.SpMM, CandidateFormats(schedule.SpMM)[1].F, 4, 32)
	if css.Threads != 1 {
		t.Fatalf("CSC threads %d, want 1 (serial concordant)", css.Threads)
	}
	if err := css.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxCEGradient(t *testing.T) {
	logits := nn.NewGrad([]float32{0.5, -1, 2})
	loss := softmaxCE(logits, 1)
	if loss <= 0 {
		t.Fatalf("loss %g", loss)
	}
	// Gradient sums to zero (softmax property) and label entry is negative.
	var sum float64
	for _, d := range logits.D {
		sum += float64(d)
	}
	if math.Abs(sum) > 1e-5 {
		t.Fatalf("gradient sum %g", sum)
	}
	if logits.D[1] >= 0 {
		t.Fatal("label gradient not negative")
	}
	// Numeric check against finite differences.
	for i := range logits.V {
		const h = 1e-3
		probe := func(x float32) float64 {
			l2 := nn.NewGrad(append([]float32(nil), logits.V...))
			l2.V[i] = x
			return float64(softmaxCE(l2, 1))
		}
		want := (probe(logits.V[i]+h) - probe(logits.V[i]-h)) / (2 * h)
		if math.Abs(float64(logits.D[i])-want) > 1e-2 {
			t.Fatalf("logit %d: analytic %g numeric %g", i, logits.D[i], want)
		}
	}
}

func TestBestFormat3D(t *testing.T) {
	bf := NewBestFormat(schedule.MTTKRP, 9)
	rng := rand.New(rand.NewSource(80))
	base := generate.Uniform(rng, 32, 32, 200)
	t3 := generate.Tensor3D(rng, base, 8, 2)
	mats := []generate.Matrix{{Name: "t3", Family: "synthetic", COO: t3}}
	cfg := TrainConfig{DenseN: 4, Repeats: 1, Epochs: 5, LR: 1e-2, Seed: 10, Profile: testProfile()}
	if err := bf.Train(mats, cfg); err != nil {
		t.Fatal(err)
	}
	wl, err := kernel.NewWorkload(schedule.MTTKRP, t3, 4)
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := bf.Tune(wl, testProfile(), Config{Repeats: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tuned.KernelSeconds <= 0 {
		t.Fatal("no kernel time")
	}
}
