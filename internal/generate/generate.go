// Package generate produces synthetic sparsity patterns. It substitutes for
// the SuiteSparse matrix collection used by the WACO paper: each generator
// targets one axis of pattern variation that the paper identifies as
// performance-relevant (density, dense-block structure, row skew, diagonal
// banding, graph-like irregularity, global vs. local placement), and the
// Suite/Corpus helpers assemble deterministic mixed populations for training
// and test sets.
//
// All generators are deterministic given their *rand.Rand and return sorted,
// deduplicated COO tensors.
package generate

import (
	"fmt"
	"math"
	"math/rand"

	"waco/internal/tensor"
)

// Matrix pairs a generated pattern with a descriptive name and the family it
// was drawn from (used by experiments to stratify results).
type Matrix struct {
	Name   string
	Family string
	COO    *tensor.COO
}

// Uniform returns a matrix with nnz nonzeros placed uniformly at random.
// Duplicates are merged, so the result may have slightly fewer than nnz
// entries.
func Uniform(rng *rand.Rand, rows, cols, nnz int) *tensor.COO {
	c := tensor.NewCOO([]int{rows, cols}, nnz)
	for p := 0; p < nnz; p++ {
		c.Append(val(rng), int32(rng.Intn(rows)), int32(rng.Intn(cols)))
	}
	finish(c)
	return c
}

// Banded returns a matrix whose nonzeros lie within the given half-bandwidth
// of the diagonal, each in-band position kept with probability fill.
// Band matrices favor concordant row-major traversal and small dense blocks.
func Banded(rng *rand.Rand, rows, cols, halfBand int, fill float64) *tensor.COO {
	c := tensor.NewCOO([]int{rows, cols}, rows*halfBand)
	for i := 0; i < rows; i++ {
		lo := i - halfBand
		if lo < 0 {
			lo = 0
		}
		hi := i + halfBand
		if hi >= cols {
			hi = cols - 1
		}
		for j := lo; j <= hi; j++ {
			if rng.Float64() < fill {
				c.Append(val(rng), int32(i), int32(j))
			}
		}
	}
	finish(c)
	return c
}

// Diagonals returns a matrix with nonzeros on the given diagonal offsets
// (DIA-like structure), each position kept with probability fill.
func Diagonals(rng *rand.Rand, rows, cols int, offsets []int, fill float64) *tensor.COO {
	c := tensor.NewCOO([]int{rows, cols}, rows*len(offsets))
	for i := 0; i < rows; i++ {
		for _, off := range offsets {
			j := i + off
			if j < 0 || j >= cols {
				continue
			}
			if rng.Float64() < fill {
				c.Append(val(rng), int32(i), int32(j))
			}
		}
	}
	finish(c)
	return c
}

// BlockDense scatters numBlocks dense blockSize x blockSize blocks at random
// block-aligned positions, filling each block position with probability
// blockFill. blockFill near 1 produces BCSR-friendly structure; blockFill
// below 0.5 reproduces the paper's under-filled-block regime (Table 6).
func BlockDense(rng *rand.Rand, rows, cols, blockSize, numBlocks int, blockFill float64) *tensor.COO {
	c := tensor.NewCOO([]int{rows, cols}, numBlocks*blockSize*blockSize)
	bRows := rows / blockSize
	bCols := cols / blockSize
	if bRows == 0 || bCols == 0 {
		finish(c)
		return c
	}
	for b := 0; b < numBlocks; b++ {
		bi := rng.Intn(bRows) * blockSize
		bj := rng.Intn(bCols) * blockSize
		for di := 0; di < blockSize; di++ {
			for dj := 0; dj < blockSize; dj++ {
				if rng.Float64() < blockFill {
					c.Append(val(rng), int32(bi+di), int32(bj+dj))
				}
			}
		}
	}
	finish(c)
	return c
}

// PowerLawRows gives row r a nonzero budget proportional to (r+1)^-alpha
// (rows are then shuffled), producing the skewed per-row distribution for
// which fine-grained load balancing matters. Total entries ~ nnz.
func PowerLawRows(rng *rand.Rand, rows, cols, nnz int, alpha float64) *tensor.COO {
	weights := make([]float64, rows)
	var total float64
	for r := range weights {
		weights[r] = math.Pow(float64(r+1), -alpha)
		total += weights[r]
	}
	perm := rng.Perm(rows)
	c := tensor.NewCOO([]int{rows, cols}, nnz)
	for r := 0; r < rows; r++ {
		budget := int(float64(nnz) * weights[r] / total)
		if budget > cols {
			budget = cols
		}
		row := int32(perm[r])
		for k := 0; k < budget; k++ {
			c.Append(val(rng), row, int32(rng.Intn(cols)))
		}
	}
	finish(c)
	return c
}

// RMAT generates an R-MAT (recursive matrix) graph adjacency pattern on a
// 2^scale x 2^scale grid with the given partition probabilities; defaults of
// (0.57, 0.19, 0.19, 0.05) reproduce the classic skewed social-graph shape.
func RMAT(rng *rand.Rand, scale, edges int, a, b, c float64) *tensor.COO {
	n := 1 << scale
	out := tensor.NewCOO([]int{n, n}, edges)
	for e := 0; e < edges; e++ {
		var i, j int
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left quadrant
			case r < a+b:
				j |= 1 << bit
			case r < a+b+c:
				i |= 1 << bit
			default:
				i |= 1 << bit
				j |= 1 << bit
			}
		}
		out.Append(val(rng), int32(i), int32(j))
	}
	finish(out)
	return out
}

// Mesh2D returns the 5-point stencil Laplacian of an n x n grid: the
// archetypal scientific-computing matrix (symmetric, banded, 5 nnz/row).
func Mesh2D(n int) *tensor.COO {
	size := n * n
	c := tensor.NewCOO([]int{size, size}, 5*size)
	idx := func(x, y int) int32 { return int32(x*n + y) }
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			p := idx(x, y)
			c.Append(4, p, p)
			if x > 0 {
				c.Append(-1, p, idx(x-1, y))
			}
			if x < n-1 {
				c.Append(-1, p, idx(x+1, y))
			}
			if y > 0 {
				c.Append(-1, p, idx(x, y-1))
			}
			if y < n-1 {
				c.Append(-1, p, idx(x, y+1))
			}
		}
	}
	finish(c)
	return c
}

// Clustered places numClusters Gaussian clouds of nonzeros with the given
// per-cluster count and radius, producing locally dense, globally sparse
// patterns (the regime where strided sparse convolution beats stride-1).
func Clustered(rng *rand.Rand, rows, cols, numClusters, perCluster int, radius float64) *tensor.COO {
	c := tensor.NewCOO([]int{rows, cols}, numClusters*perCluster)
	for k := 0; k < numClusters; k++ {
		ci := rng.Float64() * float64(rows)
		cj := rng.Float64() * float64(cols)
		for p := 0; p < perCluster; p++ {
			i := int(ci + rng.NormFloat64()*radius)
			j := int(cj + rng.NormFloat64()*radius)
			if i < 0 || i >= rows || j < 0 || j >= cols {
				continue
			}
			c.Append(val(rng), int32(i), int32(j))
		}
	}
	finish(c)
	return c
}

// Resize rescales a pattern to new dimensions by remapping coordinates
// proportionally — the augmentation the paper applies to SuiteSparse
// matrices (§4.1.3). Collisions after rounding are merged.
func Resize(c *tensor.COO, newDims []int) (*tensor.COO, error) {
	if len(newDims) != c.Order() {
		return nil, fmt.Errorf("generate: resize to %d dims for order-%d tensor", len(newDims), c.Order())
	}
	out := tensor.NewCOO(newDims, c.NNZ())
	coords := make([]int32, c.Order())
	for p := 0; p < c.NNZ(); p++ {
		for m := 0; m < c.Order(); m++ {
			x := int64(c.Coords[m][p]) * int64(newDims[m]) / int64(c.Dims[m])
			if x >= int64(newDims[m]) {
				x = int64(newDims[m]) - 1
			}
			coords[m] = int32(x)
		}
		out.Append(c.Vals[p], coords...)
	}
	finish(out)
	return out, nil
}

// val draws a nonzero value in [-1, 1) \ {0}.
func val(rng *rand.Rand) float32 {
	v := rng.Float32()*2 - 1
	if v == 0 {
		v = 0.5
	}
	return v
}

func finish(c *tensor.COO) {
	c.SortRowMajor()
	c.Dedup()
}
