package generate

import (
	"fmt"
	"math"
	"math/rand"

	"waco/internal/tensor"
)

// CorpusConfig bounds a generated matrix population. The defaults mirror the
// paper's dataset limits (rows < 131,072 and nnz < 10M) scaled down to keep
// CPU-only training tractable; raise them for full-scale runs.
type CorpusConfig struct {
	Count   int   // number of matrices
	Seed    int64 // base RNG seed; the corpus is a pure function of this
	MinDim  int   // minimum rows/cols
	MaxDim  int   // maximum rows/cols
	MaxNNZ  int   // per-matrix nonzero cap (generators are parameterized under it)
	Square  bool  // force square matrices
	Include []string
}

// DefaultCorpusConfig is the reduced-scale default population.
func DefaultCorpusConfig() CorpusConfig {
	return CorpusConfig{
		Count:  64,
		Seed:   1,
		MinDim: 256,
		MaxDim: 4096,
		MaxNNZ: 250_000,
		Square: true,
	}
}

// Families lists the available generator family names, in the order Corpus
// cycles through them.
var Families = []string{
	"uniform", "banded", "diagonals", "blockdense", "blockpartial",
	"powerlaw", "rmat", "mesh", "clustered",
}

// Corpus generates cfg.Count matrices cycling deterministically through the
// generator families (or cfg.Include if non-empty), with per-matrix
// dimensions and parameters drawn from a seeded RNG. Matrices with zero
// nonzeros are regenerated with relaxed parameters.
func Corpus(cfg CorpusConfig) []Matrix {
	families := Families
	if len(cfg.Include) > 0 {
		families = cfg.Include
	}
	out := make([]Matrix, 0, cfg.Count)
	for i := 0; i < cfg.Count; i++ {
		family := families[i%len(families)]
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
		c := FromFamily(rng, family, cfg)
		if c.NNZ() == 0 {
			c = Uniform(rng, cfg.MinDim, cfg.MinDim, cfg.MinDim*4)
		}
		out = append(out, Matrix{
			Name:   fmt.Sprintf("%s-%04d", family, i),
			Family: family,
			COO:    c,
		})
	}
	return out
}

// FromFamily draws one matrix from the named generator family with
// parameters randomized under the config's size limits. Unknown families
// fall back to uniform.
func FromFamily(rng *rand.Rand, family string, cfg CorpusConfig) *tensor.COO {
	rows := dim(rng, cfg)
	cols := rows
	if !cfg.Square {
		cols = dim(rng, cfg)
	}
	// Target a density that keeps nnz under the cap.
	maxNNZ := cfg.MaxNNZ
	nnz := maxNNZ/8 + rng.Intn(maxNNZ/2+1)
	if nnz > rows*cols/2 {
		nnz = rows * cols / 2
	}
	switch family {
	case "banded":
		hb := 2 + rng.Intn(16)
		fill := clampFill(float64(nnz) / float64(rows*(2*hb+1)))
		return Banded(rng, rows, cols, hb, fill)
	case "diagonals":
		k := 3 + rng.Intn(6)
		offsets := make([]int, k)
		for d := range offsets {
			offsets[d] = rng.Intn(2*cols/3) - cols/3
		}
		fill := clampFill(float64(nnz) / float64(rows*k))
		return Diagonals(rng, rows, cols, offsets, fill)
	case "blockdense":
		bs := []int{4, 8, 16, 32}[rng.Intn(4)]
		nb := nnz / (bs * bs)
		if nb == 0 {
			nb = 1
		}
		return BlockDense(rng, rows, cols, bs, nb, 0.85+0.15*rng.Float64())
	case "blockpartial":
		// Under-filled blocks: the <50% fill regime of Table 6.
		bs := []int{8, 16, 32}[rng.Intn(3)]
		fill := 0.2 + 0.25*rng.Float64()
		nb := int(float64(nnz) / (fill * float64(bs*bs)))
		if nb == 0 {
			nb = 1
		}
		return BlockDense(rng, rows, cols, bs, nb, fill)
	case "powerlaw":
		return PowerLawRows(rng, rows, cols, nnz, 0.8+0.8*rng.Float64())
	case "rmat":
		scale := log2floor(rows)
		return RMAT(rng, scale, nnz, 0.57, 0.19, 0.19)
	case "mesh":
		n := isqrt(rows)
		if n < 4 {
			n = 4
		}
		return Mesh2D(n)
	case "clustered":
		per := 64 + rng.Intn(256)
		ncl := nnz / per
		if ncl == 0 {
			ncl = 1
		}
		return Clustered(rng, rows, cols, ncl, per, 2+rng.Float64()*10)
	default:
		return Uniform(rng, rows, cols, nnz)
	}
}

// Augment expands a corpus by resizing each matrix into variants with
// rescaled dimensions — the paper's augmentation, which turned 2,893
// SuiteSparse matrices into 21,400 training matrices (§4.1.3). Each source
// matrix gains `variants` resized copies with dimensions drawn log-uniformly
// within [minDim, maxDim]; the originals are kept.
func Augment(mats []Matrix, variants int, seed int64, minDim, maxDim int) []Matrix {
	out := make([]Matrix, 0, len(mats)*(variants+1))
	out = append(out, mats...)
	rng := rand.New(rand.NewSource(seed))
	for _, m := range mats {
		if m.COO.Order() != 2 {
			continue
		}
		for v := 0; v < variants; v++ {
			cfg := CorpusConfig{MinDim: minDim, MaxDim: maxDim}
			rows := dim(rng, cfg)
			cols := dim(rng, cfg)
			r, err := Resize(m.COO, []int{rows, cols})
			if err != nil || r.NNZ() == 0 {
				continue
			}
			out = append(out, Matrix{
				Name:   fmt.Sprintf("%s-aug%d", m.Name, v),
				Family: m.Family,
				COO:    r,
			})
		}
	}
	return out
}

// Tensor3D generates a 3-D sparse tensor for MTTKRP following the prior-work
// recipe the paper cites for SpTFS: take a 2-D pattern and extrude each
// nonzero into a small random set of fibers along the third mode.
func Tensor3D(rng *rand.Rand, base *tensor.COO, depth, fibersPerNNZ int) *tensor.COO {
	out := tensor.NewCOO([]int{base.Dims[0], base.Dims[1], depth}, base.NNZ()*fibersPerNNZ)
	for p := 0; p < base.NNZ(); p++ {
		i, j := base.Coords[0][p], base.Coords[1][p]
		for f := 0; f < fibersPerNNZ; f++ {
			out.Append(val(rng), i, j, int32(rng.Intn(depth)))
		}
	}
	out.SortRowMajor()
	out.Dedup()
	return out
}

func dim(rng *rand.Rand, cfg CorpusConfig) int {
	if cfg.MaxDim <= cfg.MinDim {
		return cfg.MinDim
	}
	// Log-uniform between MinDim and MaxDim so small and large shapes are
	// both represented.
	lo, hi := float64(cfg.MinDim), float64(cfg.MaxDim)
	return int(lo * math.Pow(hi/lo, rng.Float64()))
}

func clampFill(f float64) float64 {
	if f > 1 {
		return 1
	}
	if f < 0.01 {
		return 0.01
	}
	return f
}

func log2floor(n int) int {
	s := 0
	for n > 1 {
		n >>= 1
		s++
	}
	return s
}

func isqrt(n int) int {
	x := 0
	for (x+1)*(x+1) <= n {
		x++
	}
	return x
}
