package generate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"waco/internal/tensor"
)

func TestUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := Uniform(rng, 100, 80, 500)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NNZ() == 0 || c.NNZ() > 500 {
		t.Fatalf("NNZ = %d", c.NNZ())
	}
}

func TestBandedStaysInBand(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	hb := 5
	c := Banded(rng, 200, 200, hb, 0.7)
	for p := 0; p < c.NNZ(); p++ {
		d := int(c.Coords[0][p]) - int(c.Coords[1][p])
		if d < -hb || d > hb {
			t.Fatalf("entry (%d,%d) outside half-band %d", c.Coords[0][p], c.Coords[1][p], hb)
		}
	}
	st := tensor.ComputeStats(c)
	if st.AvgBandwidth > float64(hb) {
		t.Fatalf("AvgBandwidth %g > %d", st.AvgBandwidth, hb)
	}
}

func TestDiagonalsOnOffsets(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	offsets := []int{-3, 0, 7}
	c := Diagonals(rng, 100, 100, offsets, 1.0)
	allowed := map[int]bool{-3: true, 0: true, 7: true}
	for p := 0; p < c.NNZ(); p++ {
		d := int(c.Coords[1][p]) - int(c.Coords[0][p])
		if !allowed[d] {
			t.Fatalf("entry on offset %d", d)
		}
	}
}

func TestBlockDenseAligned(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	bs := 8
	c := BlockDense(rng, 128, 128, bs, 10, 1.0)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	st := tensor.ComputeStats(c)
	if st.BlockFill8 != 1 {
		t.Fatalf("fully-filled blocks should give BlockFill8=1, got %g", st.BlockFill8)
	}
}

func TestBlockDenseTooSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := BlockDense(rng, 4, 4, 8, 3, 1.0) // block larger than matrix
	if c.NNZ() != 0 {
		t.Fatalf("expected empty matrix, got %d nnz", c.NNZ())
	}
}

func TestPowerLawSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := PowerLawRows(rng, 512, 512, 20000, 1.2)
	st := tensor.ComputeStats(c)
	if st.RowNNZStd <= st.RowNNZMean {
		t.Fatalf("power law should be skewed: mean %g std %g", st.RowNNZMean, st.RowNNZStd)
	}
}

func TestRMATInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c := RMAT(rng, 9, 4000, 0.57, 0.19, 0.19)
	if c.Dims[0] != 512 {
		t.Fatalf("dims %v", c.Dims)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMesh2DStructure(t *testing.T) {
	c := Mesh2D(8)
	if c.Dims[0] != 64 || c.Dims[1] != 64 {
		t.Fatalf("dims %v", c.Dims)
	}
	// Interior points have 5 entries, corners 3: total = 5n^2 - 4n.
	want := 5*64 - 4*8
	if c.NNZ() != want {
		t.Fatalf("NNZ = %d, want %d", c.NNZ(), want)
	}
	st := tensor.ComputeStats(c)
	if st.SymmetryScore != 1 {
		t.Fatalf("mesh Laplacian should be symmetric, score %g", st.SymmetryScore)
	}
}

func TestClustered(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := Clustered(rng, 1000, 1000, 5, 100, 3)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	st := tensor.ComputeStats(c)
	// Clusters concentrate nonzeros: the 8x8 block fill should far exceed
	// what a uniform pattern of the same density would show (~nnz/(n/8)^2).
	if st.BlockFill8 < 0.02 {
		t.Fatalf("clusters not locally dense: BlockFill8 = %g", st.BlockFill8)
	}
}

func TestResize(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	c := Uniform(rng, 100, 100, 400)
	r, err := Resize(c, []int{50, 200})
	if err != nil {
		t.Fatal(err)
	}
	if r.Dims[0] != 50 || r.Dims[1] != 200 {
		t.Fatalf("dims %v", r.Dims)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.NNZ() > c.NNZ() {
		t.Fatalf("resize grew NNZ %d -> %d", c.NNZ(), r.NNZ())
	}
	if _, err := Resize(c, []int{1, 2, 3}); err == nil {
		t.Fatal("accepted wrong-order resize")
	}
}

func TestQuickResizeInRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := Uniform(rng, 64, 64, 100)
		nd := []int{1 + rng.Intn(128), 1 + rng.Intn(128)}
		r, err := Resize(c, nd)
		if err != nil {
			return false
		}
		return r.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCorpusDeterministic(t *testing.T) {
	cfg := DefaultCorpusConfig()
	cfg.Count = 18
	cfg.MaxDim = 512
	cfg.MaxNNZ = 20000
	a := Corpus(cfg)
	b := Corpus(cfg)
	if len(a) != 18 {
		t.Fatalf("corpus size %d", len(a))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].COO.NNZ() != b[i].COO.NNZ() {
			t.Fatalf("corpus not deterministic at %d", i)
		}
		if a[i].COO.NNZ() == 0 {
			t.Fatalf("matrix %s empty", a[i].Name)
		}
		if err := a[i].COO.Validate(); err != nil {
			t.Fatalf("matrix %s invalid: %v", a[i].Name, err)
		}
	}
	// All families should appear.
	seen := map[string]bool{}
	for _, m := range a {
		seen[m.Family] = true
	}
	for _, f := range Families {
		if !seen[f] {
			t.Errorf("family %s missing from corpus", f)
		}
	}
}

func TestCorpusIncludeFilter(t *testing.T) {
	cfg := DefaultCorpusConfig()
	cfg.Count = 4
	cfg.MaxDim = 256
	cfg.MaxNNZ = 5000
	cfg.Include = []string{"banded"}
	for _, m := range Corpus(cfg) {
		if m.Family != "banded" {
			t.Fatalf("unexpected family %s", m.Family)
		}
	}
}

func TestTensor3D(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	base := Uniform(rng, 64, 64, 200)
	t3 := Tensor3D(rng, base, 32, 3)
	if t3.Order() != 3 {
		t.Fatalf("order %d", t3.Order())
	}
	if t3.Dims[2] != 32 {
		t.Fatalf("dims %v", t3.Dims)
	}
	if err := t3.Validate(); err != nil {
		t.Fatal(err)
	}
	if t3.NNZ() < base.NNZ() {
		t.Fatalf("3D tensor smaller than base: %d < %d", t3.NNZ(), base.NNZ())
	}
}

func TestFromFamilyUnknownFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	cfg := DefaultCorpusConfig()
	cfg.MaxDim = 256
	cfg.MaxNNZ = 4000
	c := FromFamily(rng, "no-such-family", cfg)
	if c.NNZ() == 0 {
		t.Fatal("fallback produced empty matrix")
	}
}

func TestAugment(t *testing.T) {
	cfg := DefaultCorpusConfig()
	cfg.Count = 4
	cfg.MaxDim = 256
	cfg.MaxNNZ = 3000
	base := Corpus(cfg)
	aug := Augment(base, 2, 5, 64, 512)
	if len(aug) <= len(base) {
		t.Fatalf("augmentation added nothing: %d -> %d", len(base), len(aug))
	}
	originals := map[string]bool{}
	for _, b := range base {
		originals[b.Name] = true
	}
	for _, m := range aug {
		if err := m.COO.Validate(); err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if originals[m.Name] {
			continue // originals keep their dimensions
		}
		for _, d := range m.COO.Dims {
			if d < 64 || d > 512 {
				t.Fatalf("%s: dims %v outside augment range", m.Name, m.COO.Dims)
			}
		}
	}
	// Deterministic.
	aug2 := Augment(base, 2, 5, 64, 512)
	if len(aug2) != len(aug) {
		t.Fatal("augment not deterministic")
	}
}
