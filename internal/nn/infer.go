package nn

// This file is the forward-only inference path. The Apply methods in
// layers.go allocate a fresh Grad per layer output so the tape can route
// gradients; at serving time that is pure garbage — a query-path search runs
// hundreds of predictor-head evaluations and every one of them used to leave
// a trail of short-lived Grads behind. The Infer methods below compute the
// exact same values (bit-identical: same operations in the same order on the
// same float32 values) but write into caller-provided scratch, so a
// steady-state evaluation performs zero heap allocations.
//
// Ownership rules: an Arena is strictly single-goroutine, like a Tape. Every
// slice returned by Alloc (and by any Infer method that allocates from the
// arena) is valid until the next Reset; Reset recycles the whole arena at
// once, so it must only be called when no slice from the previous cycle is
// still in use. Concurrent queries each take their own arena (internal/serve
// and search.Index recycle them through a sync.Pool).

// arenaMinSlab is the smallest slab an Arena allocates; queries smaller than
// this reach zero-allocation steady state after a single warmup.
const arenaMinSlab = 4096

// Arena is a bump allocator of float32 scratch for forward-only inference.
// The zero value is ready to use. Alloc hands out zeroed sub-slices of one
// backing slab; when demand outgrows the slab, Reset right-sizes it so the
// next cycle allocates nothing.
type Arena struct {
	slab []float32
	off  int
	used int    // total float32s handed out since the last Reset
	gen  uint64 // bumped by Reset; see Gen
}

// Gen returns the arena's generation: a counter bumped by every Reset. A
// slice handed out by Alloc is valid exactly while the generation it was
// allocated under is current, so derived state memoized against a slice's
// identity (address + length) must also key on the generation — the address
// survives a Reset, the contents do not. A nil arena is permanently
// generation 0.
func (a *Arena) Gen() uint64 {
	if a == nil {
		return 0
	}
	return a.gen
}

// Alloc returns a zeroed scratch slice of length n, valid until Reset. A nil
// arena falls back to make, so forward-only helpers degrade gracefully.
func (a *Arena) Alloc(n int) []float32 {
	if a == nil {
		return make([]float32, n)
	}
	a.used += n
	if a.off+n > len(a.slab) {
		// Outstanding slices keep the old slab alive; this cycle spills into
		// a fresh one and Reset right-sizes for the next cycle.
		size := 2 * len(a.slab)
		if size < arenaMinSlab {
			size = arenaMinSlab
		}
		if size < n {
			size = n
		}
		a.slab = make([]float32, size)
		a.off = 0
	}
	s := a.slab[a.off : a.off+n : a.off+n]
	a.off += n
	clear(s)
	return s
}

// Reset recycles the arena for a new inference cycle. All slices handed out
// since the previous Reset become invalid. If the finished cycle spilled past
// the slab, the slab is regrown to the cycle's total demand so the next cycle
// stays allocation-free.
func (a *Arena) Reset() {
	if a.used > len(a.slab) {
		a.slab = make([]float32, a.used)
	}
	a.off = 0
	a.used = 0
	a.gen++
}

// Infer computes the layer output forward-only, writing into arena scratch.
// Bit-identical to Apply with a nil tape: same accumulation order.
//
//waco:allocfree
func (l *Linear) Infer(a *Arena, x []float32) []float32 {
	y := a.Alloc(l.Out)
	l.InferInto(y, x)
	return y
}

// InferInto computes y = W x + b into a caller-owned buffer of length Out,
// allocating nothing.
//
//waco:allocfree
func (l *Linear) InferInto(y, x []float32) {
	CheckShape("linear input", len(x), l.In)
	CheckShape("linear output", len(y), l.Out)
	for o := 0; o < l.Out; o++ {
		row := l.W.W[o*l.In : (o+1)*l.In]
		acc := l.B.W[o]
		for i, xi := range x {
			acc += row[i] * xi
		}
		y[o] = acc
	}
}

// ReLUInPlace rectifies x in place. The tape path writes v into a zeroed
// buffer only when v > 0; the negated condition here reproduces that exactly
// (including -0 and NaN collapsing to +0), so the bits match.
//
//waco:allocfree
func ReLUInPlace(x []float32) {
	for i, v := range x {
		if !(v > 0) {
			x[i] = 0
		}
	}
}

// Infer runs the stack forward-only. Intermediate activations live on the
// arena; the input is never written.
//
//waco:allocfree
func (m *MLP) Infer(a *Arena, x []float32) []float32 {
	for i, l := range m.Layers {
		x = l.Infer(a, x)
		if i+1 < len(m.Layers) {
			ReLUInPlace(x)
		}
	}
	return x
}

// Lookup returns entry idx of the table as a read-only view — the inference
// counterpart of Apply, with the same out-of-range snapping. Callers must not
// modify the returned slice (it aliases the weights).
//
//waco:allocfree
func (e *Embedding) Lookup(idx int) []float32 {
	if idx < 0 || idx >= e.N {
		idx = e.N - 1
	}
	return e.Table.W[idx*e.Dim : (idx+1)*e.Dim]
}
