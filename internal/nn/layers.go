package nn

import "math/rand"

// Tape records backward closures during a forward pass. Backward replays
// them in reverse, accumulating parameter gradients and propagating the
// input gradient. A nil *Tape runs layers in inference mode.
//
// A Tape is strictly single-goroutine: Push appends to an unguarded slice
// and the recorded closures write into shared parameter gradient buffers,
// so a Tape must never be captured by a goroutine other than the one that
// created it, sent over a channel, or shared between concurrent forward
// passes. Parallel training gives every worker its own Tape (and its own
// gradient buffers via a model replica); the waco-vet tapeshare analyzer
// enforces the convention statically.
type Tape struct {
	backs []func()
}

// Push records a backward step.
func (t *Tape) Push(f func()) {
	if t != nil {
		t.backs = append(t.backs, f)
	}
}

// Backward replays all recorded steps most-recent-first.
func (t *Tape) Backward() {
	for i := len(t.backs) - 1; i >= 0; i-- {
		t.backs[i]()
	}
	t.backs = t.backs[:0]
}

// Grad is a value with its gradient slot; layers communicate through it so a
// later layer's backward writes into the upstream gradient buffer.
type Grad struct {
	V []float32 // value
	D []float32 // dLoss/dV, same length
}

// NewGrad wraps a value with a zeroed gradient slot.
func NewGrad(v []float32) *Grad { return &Grad{V: v, D: make([]float32, len(v))} }

// Linear is a fully connected layer y = W x + b with W stored row-major
// (Out x In).
type Linear struct {
	In, Out int
	W, B    *Param
}

// NewLinear creates a He-initialized linear layer.
func NewLinear(name string, in, out int, rng *rand.Rand) *Linear {
	l := &Linear{In: in, Out: out, W: NewParam(name+".W", out, in), B: NewParam(name+".B", out, 1)}
	l.W.InitHe(rng, in)
	return l
}

// Params returns the layer's trainable parameters.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// Apply computes the layer output, recording backward on the tape.
func (l *Linear) Apply(t *Tape, x *Grad) *Grad {
	CheckShape("linear input", len(x.V), l.In)
	y := NewGrad(make([]float32, l.Out))
	for o := 0; o < l.Out; o++ {
		row := l.W.W[o*l.In : (o+1)*l.In]
		acc := l.B.W[o]
		for i, xi := range x.V {
			acc += row[i] * xi
		}
		y.V[o] = acc
	}
	t.Push(func() {
		for o := 0; o < l.Out; o++ {
			dy := y.D[o]
			if dy == 0 {
				continue
			}
			row := l.W.W[o*l.In : (o+1)*l.In]
			grow := l.W.G[o*l.In : (o+1)*l.In]
			l.B.G[o] += dy
			for i, xi := range x.V {
				grow[i] += dy * xi
				x.D[i] += dy * row[i]
			}
		}
	})
	return y
}

// ReLU applies max(0, x) elementwise.
func ReLU(t *Tape, x *Grad) *Grad {
	y := NewGrad(make([]float32, len(x.V)))
	for i, v := range x.V {
		if v > 0 {
			y.V[i] = v
		}
	}
	t.Push(func() {
		for i, v := range x.V {
			if v > 0 {
				x.D[i] += y.D[i]
			}
		}
	})
	return y
}

// Concat joins several values into one, splitting the gradient on backward.
func Concat(t *Tape, xs ...*Grad) *Grad {
	n := 0
	for _, x := range xs {
		n += len(x.V)
	}
	y := NewGrad(make([]float32, 0, n))
	for _, x := range xs {
		y.V = append(y.V, x.V...)
	}
	y.D = make([]float32, n)
	t.Push(func() {
		off := 0
		for _, x := range xs {
			for i := range x.V {
				x.D[i] += y.D[off+i]
			}
			off += len(x.V)
		}
	})
	return y
}

// Embedding is a learnable lookup table mapping a categorical choice index
// to a dense vector (the green boxes of Figure 11).
type Embedding struct {
	N, Dim int
	Table  *Param
}

// NewEmbedding creates an N-entry table of Dim-dimensional embeddings.
func NewEmbedding(name string, n, dim int, rng *rand.Rand) *Embedding {
	e := &Embedding{N: n, Dim: dim, Table: NewParam(name, n, dim)}
	e.Table.InitUniform(rng, 0.1)
	return e
}

// Params returns the trainable table.
func (e *Embedding) Params() []*Param { return []*Param{e.Table} }

// Apply looks up entry idx.
func (e *Embedding) Apply(t *Tape, idx int) *Grad {
	if idx < 0 || idx >= e.N {
		// Snap out-of-range indexes to the last entry rather than crash:
		// encodings snap values, but defensive here too.
		idx = e.N - 1
	}
	y := NewGrad(make([]float32, e.Dim))
	copy(y.V, e.Table.W[idx*e.Dim:(idx+1)*e.Dim])
	t.Push(func() {
		g := e.Table.G[idx*e.Dim : (idx+1)*e.Dim]
		for i := range g {
			g[i] += y.D[i]
		}
	})
	return y
}

// MLP is a stack of Linear layers with ReLU between them (none after the
// last layer).
type MLP struct {
	Layers []*Linear
}

// NewMLP builds an MLP with the given layer widths, e.g. dims = [in, h, out].
func NewMLP(name string, dims []int, rng *rand.Rand) *MLP {
	m := &MLP{}
	for i := 0; i+1 < len(dims); i++ {
		m.Layers = append(m.Layers, NewLinear(nameIdx(name, i), dims[i], dims[i+1], rng))
	}
	return m
}

func nameIdx(name string, i int) string {
	return name + "." + string(rune('0'+i))
}

// Params returns all layer parameters.
func (m *MLP) Params() []*Param {
	var out []*Param
	for _, l := range m.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// Apply runs the stack.
func (m *MLP) Apply(t *Tape, x *Grad) *Grad {
	for i, l := range m.Layers {
		x = l.Apply(t, x)
		if i+1 < len(m.Layers) {
			x = ReLU(t, x)
		}
	}
	return x
}
