package nn

import (
	"math/rand"
	"testing"
)

func randLinear(t testing.TB, in, out int, seed int64) *Linear {
	t.Helper()
	l := NewLinear("test", in, out, rand.New(rand.NewSource(seed)))
	return l
}

// TestQuantizeValueRounding pins the symmetric rounding and clamping rules.
func TestQuantizeValueRounding(t *testing.T) {
	cases := []struct {
		v, inv float32
		want   int8
	}{
		{0, 1, 0},
		{1, 1, 1},
		{-1, 1, -1},
		{0.49, 1, 0},
		{0.51, 1, 1},
		{-0.51, 1, -1},
		{200, 1, 127},
		{-200, 1, -127},
		{0.5, 100, 50},
	}
	for _, c := range cases {
		if got := QuantizeValue(c.v, c.inv); got != c.want {
			t.Fatalf("QuantizeValue(%v, %v) = %d, want %d", c.v, c.inv, got, c.want)
		}
	}
}

// TestQuantizeLinearReconstruction: every quantized weight reconstructs to
// within half a code of the original under its channel scale, and an
// all-zero row is exact.
func TestQuantizeLinearReconstruction(t *testing.T) {
	l := randLinear(t, 24, 8, 51)
	zero := 3
	for i := 0; i < l.In; i++ {
		l.W.W[zero*l.In+i] = 0
	}
	q := QuantizeLinear(l)
	for o := 0; o < l.Out; o++ {
		for i := 0; i < l.In; i++ {
			w := l.W.W[o*l.In+i]
			back := q.Scale[o] * float32(q.W[o*q.In+i])
			tol := q.Scale[o] / 2
			if o == zero {
				tol = 0
			}
			if d := back - w; d > tol || d < -tol {
				t.Fatalf("weight [%d,%d]: %v reconstructs to %v (scale %v)", o, i, w, back, q.Scale[o])
			}
		}
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(q.B) != l.Out {
		t.Fatalf("bias length %d, want %d", len(q.B), l.Out)
	}
}

// TestQuantizedInferIntoMatchesFloat: the int8 mat-vec tracks the float
// layer within the accumulated quantization error bound.
func TestQuantizedInferIntoMatchesFloat(t *testing.T) {
	l := randLinear(t, 32, 6, 52)
	q := QuantizeLinear(l)
	rng := rand.New(rand.NewSource(53))
	x := make([]float32, l.In)
	xMax := float32(0)
	for i := range x {
		x[i] = rng.Float32()*2 - 1
		if a := abs32(x[i]); a > xMax {
			xMax = a
		}
	}
	xScale := xMax / QuantMax
	xq := make([]int8, l.In)
	QuantizeSlice(xq, x, xScale)

	want := make([]float32, l.Out)
	l.InferInto(want, x)
	got := make([]float32, l.Out)
	q.InferInto(got, q.B, xq, xScale)

	for o := range got {
		// Error per term is bounded by w*dx + x*dw + dw*dx with dw <= s_w/2,
		// dx <= s_x/2; sum over In terms with |w|,|x| <= their maxes.
		bound := float32(l.In) * (q.Scale[o]/2*xMax + xScale/2*(q.Scale[o]*QuantMax) + q.Scale[o]*xScale/4)
		if d := got[o] - want[o]; d > bound || d < -bound {
			t.Fatalf("output %d: quantized %v, float %v (bound %v)", o, got[o], want[o], bound)
		}
	}
}

// TestQuantizeLinearColsSplitsConcatLayer: float feature half + quantized
// embedding half reproduces the full layer on a concat input, within the
// embedding half's quantization error — the layer-0 split the predictor
// head's fast path relies on.
func TestQuantizeLinearColsSplitsConcatLayer(t *testing.T) {
	const featDim, embDim = 10, 14
	l := randLinear(t, featDim+embDim, 5, 54)
	q := QuantizeLinearCols(l, featDim, l.In)
	if q.B != nil {
		t.Fatal("column-slice quantization must not carry a bias")
	}
	if q.In != embDim {
		t.Fatalf("q.In = %d, want %d", q.In, embDim)
	}

	rng := rand.New(rand.NewSource(55))
	x := make([]float32, l.In)
	for i := range x {
		x[i] = rng.Float32()*2 - 1
	}
	want := make([]float32, l.Out)
	l.InferInto(want, x)

	// Float feature partial: bias + feature columns.
	base := make([]float32, l.Out)
	for o := 0; o < l.Out; o++ {
		acc := l.B.W[o]
		for i := 0; i < featDim; i++ {
			acc += l.W.W[o*l.In+i] * x[i]
		}
		base[o] = acc
	}
	emb := x[featDim:]
	embScale := MaxAbs(emb) / QuantMax
	eq := make([]int8, embDim)
	QuantizeSlice(eq, emb, embScale)
	got := make([]float32, l.Out)
	q.InferInto(got, base, eq, embScale)

	for o := range got {
		bound := float32(embDim) * (q.Scale[o]*MaxAbs(emb)/2 + embScale*q.Scale[o]*QuantMax/2 + q.Scale[o]*embScale/4)
		if d := got[o] - want[o]; d > bound || d < -bound {
			t.Fatalf("output %d: split %v, full %v (bound %v)", o, got[o], want[o], bound)
		}
	}
}

// TestQuantizedLinearValidate rejects every inconsistent shape a corrupted
// artifact section could deliver.
func TestQuantizedLinearValidate(t *testing.T) {
	good := QuantizeLinear(randLinear(t, 8, 4, 56))
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(q *QuantizedLinear){
		"zero in":         func(q *QuantizedLinear) { q.In = 0 },
		"negative out":    func(q *QuantizedLinear) { q.Out = -1 },
		"short weights":   func(q *QuantizedLinear) { q.W = q.W[:len(q.W)-1] },
		"oversize scales": func(q *QuantizedLinear) { q.Scale = append(q.Scale, 1) },
		"short bias":      func(q *QuantizedLinear) { q.B = q.B[:len(q.B)-1] },
		"zero scale":      func(q *QuantizedLinear) { q.Scale[0] = 0 },
		"negative scale":  func(q *QuantizedLinear) { q.Scale[1] = -1 },
		"nan scale":       func(q *QuantizedLinear) { q.Scale[2] = nan32() },
		"too wide":        func(q *QuantizedLinear) { q.In = quantAccumLimit + 1 },
	}
	for name, corrupt := range cases {
		q := *good
		q.W = append([]int8(nil), good.W...)
		q.Scale = append([]float32(nil), good.Scale...)
		q.B = append([]float32(nil), good.B...)
		corrupt(&q)
		if err := q.Validate(); err == nil {
			t.Fatalf("%s: Validate accepted a corrupted layer", name)
		}
	}
}

func nan32() float32 {
	z := float32(0)
	return z / z //waco:nolint floatcmp -- constructing NaN for a validation test
}

// TestQuantizeReLUSliceMatchesUnfused pins the fused quantizer to the
// reference ReLU-then-QuantizeSlice composition, bit for bit, including the
// clamp and the tiny-positive region where rounding lands on zero.
func TestQuantizeReLUSliceMatchesUnfused(t *testing.T) {
	src := []float32{-3, -0.001, 0, 0.001, 0.2, 0.49, 0.51, 1, 2.5, 63.4, 63.6, 127, 200, 1e30, -1e30}
	for _, scale := range []float32{1, 0.5, 0.03, 2} {
		ref := append([]float32(nil), src...)
		ReLUInPlace(ref)
		want := make([]int8, len(src))
		QuantizeSlice(want, ref, scale)

		in := append([]float32(nil), src...)
		got := make([]int8, len(src))
		QuantizeReLUSlice(got, in, scale)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("scale %v, src %v: fused %d, reference %d", scale, src[i], got[i], want[i])
			}
		}
		for i := range in {
			if in[i] != src[i] { //waco:nolint floatcmp -- asserting the input was not mutated
				t.Fatalf("scale %v: QuantizeReLUSlice mutated src[%d]: %v -> %v", scale, i, src[i], in[i])
			}
		}
	}
}

// BenchmarkQuantizedInferInto and BenchmarkLinearInferInto time one 64x64
// mat-vec each — the int8 head's hot loop against its float counterpart, the
// pair the quantized-vs-float throughput gate in scripts/benchdiff.sh rides
// on.
func BenchmarkQuantizedInferInto(b *testing.B) {
	l := randLinear(b, 64, 64, 91)
	q := QuantizeLinear(l)
	xq := make([]int8, 64)
	for i := range xq {
		xq[i] = int8(i*7%255 - 127)
	}
	y := make([]float32, 64)
	base := make([]float32, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.InferInto(y, base, xq, 0.05)
	}
}

func BenchmarkLinearInferInto(b *testing.B) {
	l := randLinear(b, 64, 64, 91)
	x := make([]float32, 64)
	for i := range x {
		x[i] = float32(i%13) * 0.21
	}
	y := make([]float32, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.InferInto(y, x)
	}
}
