package nn

// HingeRankLoss is the paper's pairwise ranking objective (§4.1.3):
//
//	L = sign(y_slow > y_fast) * max(0, 1 - (yhat_slow - yhat_fast))
//
// where y are measured runtimes and yhat predicted costs. Given the
// predictions for the slower and faster schedule of a pair, it returns the
// loss and writes the gradients into the predictions' D slots.
//
// The cost model is trained to *rank* schedules, not to regress absolute
// runtimes, so the model only needs the predicted margin to exceed 1.
func HingeRankLoss(predSlow, predFast *Grad) float32 {
	margin := predSlow.V[0] - predFast.V[0]
	if 1-margin <= 0 {
		return 0
	}
	predSlow.D[0] -= 1
	predFast.D[0] += 1
	return 1 - margin
}

// MSELoss is 0.5*(pred-target)^2 with gradient written into pred.D; used by
// the ranking-vs-regression ablation.
func MSELoss(pred *Grad, target float32) float32 {
	d := pred.V[0] - target
	pred.D[0] += d
	return 0.5 * d * d
}
