package nn

import "fmt"

// This file is the int8 quantized counterpart of the forward-only inference
// path. The query-path search spends almost all of its time inside the
// predictor head's mat-vecs; the head is trained with a ranking loss, so only
// the ORDER of its outputs matters — which makes it a textbook candidate for
// symmetric fixed-point quantization: weights become int8 with one scale per
// output channel, activations become int8 with one calibrated scale per
// tensor, and the dot products run on int32 accumulators. The float path
// stays the oracle; the quantized path is pinned against it by Spearman
// rank-correlation tests in internal/costmodel.
//
// Accumulator-width note: an int8*int8 product is bounded by 2^14, so an
// int32 accumulator holds 2^17 such terms exactly — far beyond any layer
// width in this tree (the check in QuantizeLinear enforces the margin).

// QuantMax is the symmetric int8 quantization range: values map to
// [-QuantMax, QuantMax] (the -128 code is unused, as in standard symmetric
// schemes, so negation never overflows).
const QuantMax = 127

// quantAccumLimit is the widest In a QuantizedLinear accepts: 2^17 terms of
// at most 2^14 each stay strictly inside an int32 accumulator.
const quantAccumLimit = 1 << 17

// QuantizedLinear is a Linear with int8 weights under symmetric
// per-output-channel scales: W_float[o][i] ~= Scale[o] * W[o*In+i]. The bias
// stays float32 — it is added once per output, after the integer dot product
// is rescaled, so quantizing it would cost accuracy for no speed.
type QuantizedLinear struct {
	In, Out int
	W       []int8    // row-major Out x In
	Scale   []float32 // per-output-channel weight scale, len Out
	B       []float32 // float bias, len Out; nil when the caller supplies the base
}

// QuantizeLinear converts a trained layer to int8 with symmetric
// per-output-channel scales. Lossless for zero rows (scale 1, all-zero
// codes); every other weight rounds to the nearest of 255 codes.
func QuantizeLinear(l *Linear) *QuantizedLinear {
	q := QuantizeLinearCols(l, 0, l.In)
	q.B = append([]float32(nil), l.B.W[:l.Out]...)
	return q
}

// QuantizeLinearCols quantizes the column slice [from, to) of a layer — the
// building block for splitting a concat-input layer into a float half (the
// query-constant feature columns) and a quantized half (the per-candidate
// embedding columns). The result has no bias; callers pass their own base to
// InferInto.
func QuantizeLinearCols(l *Linear, from, to int) *QuantizedLinear {
	in := to - from
	if from < 0 || to > l.In || in <= 0 {
		panic("nn: quantize column range out of bounds") //waco:nolint paniccall -- construction-time misuse, not reachable from serving input
	}
	if in > quantAccumLimit {
		panic("nn: layer too wide for int32 accumulation") //waco:nolint paniccall -- construction-time misuse, not reachable from serving input
	}
	q := &QuantizedLinear{In: in, Out: l.Out, W: make([]int8, l.Out*in), Scale: make([]float32, l.Out)}
	for o := 0; o < l.Out; o++ {
		row := l.W.W[o*l.In+from : o*l.In+to]
		maxAbs := float32(0)
		for _, w := range row {
			if a := abs32(w); a > maxAbs {
				maxAbs = a
			}
		}
		scale := maxAbs / QuantMax
		if scale == 0 {
			scale = 1 // all-zero row: any scale reproduces it exactly
		}
		q.Scale[o] = scale
		qrow := q.W[o*in : (o+1)*in]
		inv := 1 / scale
		for i, w := range row {
			qrow[i] = QuantizeValue(w, inv)
		}
	}
	return q
}

// QuantizeValue maps one float to its nearest symmetric int8 code under the
// inverse scale, clamping to the [-QuantMax, QuantMax] range.
//
//waco:allocfree
func QuantizeValue(v, invScale float32) int8 {
	x := v * invScale
	// Round half away from zero; adding ±0.5 before truncation is exact for
	// the magnitudes that survive the clamp below.
	if x >= 0 {
		x += 0.5
	} else {
		x -= 0.5
	}
	if x > QuantMax {
		return QuantMax
	}
	if x < -QuantMax {
		return -QuantMax
	}
	return int8(x)
}

// QuantizeSlice quantizes src into dst under one shared scale (symmetric,
// clamped). It is the activation/embedding quantizer: scale comes from a
// calibration pass, not from src itself.
//
//waco:allocfree
func QuantizeSlice(dst []int8, src []float32, scale float32) {
	CheckShape("quantize slice", len(dst), len(src))
	inv := 1 / scale
	for i, v := range src {
		dst[i] = QuantizeValue(v, inv)
	}
}

// QuantizeReLUSlice quantizes max(src[i], 0) into dst — the fused
// ReLU-then-quantize step between quantized head layers. Bit-identical to
// ReLUInPlace followed by QuantizeSlice, but one pass over memory, no
// negative rounding branch (a post-ReLU activation is never negative), and
// src stays untouched.
//
//waco:allocfree
func QuantizeReLUSlice(dst []int8, src []float32, scale float32) {
	CheckShape("quantize relu slice", len(dst), len(src))
	inv := 1 / scale
	for i, v := range src {
		x := v*inv + 0.5
		switch {
		case !(x > 0.5): // v <= 0 (or NaN): the ReLU floor
			dst[i] = 0
		case x > QuantMax:
			dst[i] = QuantMax
		default:
			dst[i] = int8(x)
		}
	}
}

// MaxAbs returns the largest absolute value in xs (0 for an empty slice) —
// the calibration primitive behind every activation scale.
func MaxAbs(xs []float32) float32 {
	m := float32(0)
	for _, v := range xs {
		if a := abs32(v); a > m {
			m = a
		}
	}
	return m
}

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}

// InferInto computes y[o] = base[o] + Scale[o]*xScale*(W[o] . xq) on int32
// accumulators. base carries whatever the integer dot product sits on top
// of: q.B for a whole quantized layer, or a caller-computed float partial
// (the query-constant feature half of a concat layer). base may alias y.
//
//waco:allocfree
func (q *QuantizedLinear) InferInto(y, base []float32, xq []int8, xScale float32) {
	CheckShape("quantized linear input", len(xq), q.In)
	CheckShape("quantized linear output", len(y), q.Out)
	CheckShape("quantized linear base", len(base), q.Out)
	for o := 0; o < q.Out; o++ {
		row := q.W[o*q.In : (o+1)*q.In]
		x := xq[:len(row)] // one bound proof for the whole row
		// Accumulate in the native int width: on 64-bit targets this
		// avoids the 32-bit sub-register moves the compiler emits for an
		// int32 accumulator (~1.5x on the mat-vec microbenchmark). The
		// quantAccumLimit guarantee keeps the sum inside int32 range, so
		// the narrowing below is exact on every platform.
		acc := 0
		for i, w := range row {
			acc += int(w) * int(x[i])
		}
		y[o] = base[o] + q.Scale[o]*xScale*float32(int32(acc))
	}
}

// Validate checks the internal shape invariants — the load-time gate for
// quantized layers arriving from a sealed artifact, where W, Scale, and the
// dims travelled independently and may disagree after corruption.
func (q *QuantizedLinear) Validate() error {
	if q.In <= 0 || q.Out <= 0 {
		return errQuantShape("non-positive dims", q.In, q.Out)
	}
	if q.In > quantAccumLimit {
		return errQuantShape("input too wide for int32 accumulation", q.In, q.Out)
	}
	if len(q.W) != q.In*q.Out {
		return errQuantShape("weight length", len(q.W), q.In*q.Out)
	}
	if len(q.Scale) != q.Out {
		return errQuantShape("scale length", len(q.Scale), q.Out)
	}
	if q.B != nil && len(q.B) != q.Out {
		return errQuantShape("bias length", len(q.B), q.Out)
	}
	for _, s := range q.Scale {
		if !(s > 0) { // rejects zero, negatives, and NaN in one comparison
			return errQuantShape("non-positive or NaN scale", q.In, q.Out)
		}
	}
	return nil
}

func errQuantShape(what string, got, want int) error {
	return fmt.Errorf("nn: quantized layer %s: %d vs %d", what, got, want)
}
