// Package nn is a minimal neural-network library sufficient for WACO's cost
// model: float32 parameters, linear and embedding layers with hand-written
// backpropagation recorded on a tape, ReLU, Adam, and the pairwise hinge
// ranking loss of §4.1.3. It is deliberately small — models in this
// repository are MLPs over concatenated feature vectors plus the sparse
// convolutional feature extractor in internal/sparseconv, which builds on
// the same Param/Tape machinery.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Param is a trainable tensor (matrix or vector) with its gradient
// accumulator and Adam moment state.
type Param struct {
	Name       string
	Rows, Cols int
	W          []float32 // row-major data
	G          []float32 // gradient, accumulated by Backward passes
	m, v       []float32 // Adam first/second moments
}

// NewParam allocates a zeroed rows x cols parameter.
func NewParam(name string, rows, cols int) *Param {
	n := rows * cols
	return &Param{
		Name: name, Rows: rows, Cols: cols,
		W: make([]float32, n), G: make([]float32, n),
		m: make([]float32, n), v: make([]float32, n),
	}
}

// InitHe fills the parameter with He-normal values scaled by fan-in, the
// standard initialization for ReLU networks.
func (p *Param) InitHe(rng *rand.Rand, fanIn int) {
	std := float32(math.Sqrt(2.0 / float64(maxInt(1, fanIn))))
	for i := range p.W {
		p.W[i] = float32(rng.NormFloat64()) * std
	}
}

// InitUniform fills with uniform values in [-s, s].
func (p *Param) InitUniform(rng *rand.Rand, s float64) {
	for i := range p.W {
		p.W[i] = float32((rng.Float64()*2 - 1) * s)
	}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() {
	for i := range p.G {
		p.G[i] = 0
	}
}

// Adam is the Adam optimizer (Kingma & Ba), the paper's training optimizer
// (learning rate 1e-4).
type Adam struct {
	LR, Beta1, Beta2, Eps float32
	step                  int
	params                []*Param
}

// NewAdam creates an optimizer over the given parameters with standard betas.
func NewAdam(lr float32, params ...*Param) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, params: params}
}

// Add registers more parameters.
func (a *Adam) Add(params ...*Param) { a.params = append(a.params, params...) }

// Params returns the registered parameters.
func (a *Adam) Params() []*Param { return a.params }

// Step applies one Adam update from the accumulated gradients and zeroes
// them.
func (a *Adam) Step() {
	a.step++
	b1t := float32(math.Pow(float64(a.Beta1), float64(a.step)))
	b2t := float32(math.Pow(float64(a.Beta2), float64(a.step)))
	for _, p := range a.params {
		for i, g := range p.G {
			p.m[i] = a.Beta1*p.m[i] + (1-a.Beta1)*g
			p.v[i] = a.Beta2*p.v[i] + (1-a.Beta2)*g*g
			mHat := p.m[i] / (1 - b1t)
			vHat := p.v[i] / (1 - b2t)
			p.W[i] -= a.LR * mHat / (sqrt32(vHat) + a.Eps)
			p.G[i] = 0
		}
	}
}

// GradNorm returns the L2 norm of all registered gradients (diagnostics).
func (a *Adam) GradNorm() float64 {
	var s float64
	for _, p := range a.params {
		for _, g := range p.G {
			s += float64(g) * float64(g)
		}
	}
	return math.Sqrt(s)
}

func sqrt32(x float32) float32 { return float32(math.Sqrt(float64(x))) }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// CheckShape panics with a descriptive message if the length does not match
// the expectation; used at layer boundaries to catch wiring bugs early.
//
//waco:nolint paniccall -- layer shapes are fixed at model construction, so a mismatch is a wiring bug in this repo, never a property of request input
func CheckShape(what string, got, want int) {
	if got != want {
		panic(fmt.Sprintf("nn: %s length %d, want %d", what, got, want))
	}
}
