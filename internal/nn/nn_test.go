package nn

import (
	"math"
	"math/rand"
	"testing"
)

// numericGrad estimates dLoss/dp numerically by central differences.
func numericGrad(p *Param, i int, loss func() float32) float64 {
	const h = 1e-3
	orig := p.W[i]
	p.W[i] = orig + h
	lp := float64(loss())
	p.W[i] = orig - h
	lm := float64(loss())
	p.W[i] = orig
	return (lp - lm) / (2 * h)
}

func TestLinearGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear("l", 4, 3, rng)
	x := NewGrad([]float32{0.3, -0.7, 1.2, 0.05})

	// Loss = sum of squares of outputs.
	forward := func(tape *Tape) float32 {
		y := l.Apply(tape, x)
		var s float32
		for i, v := range y.V {
			s += v * v
			if tape != nil {
				y.D[i] = 2 * v
			}
		}
		return s
	}
	lossOnly := func() float32 { return forward(nil) }

	var tape Tape
	forward(&tape)
	tape.Backward()

	for _, p := range l.Params() {
		for i := range p.W {
			want := numericGrad(p, i, lossOnly)
			got := float64(p.G[i])
			if math.Abs(got-want) > 1e-2*math.Max(1, math.Abs(want)) {
				t.Fatalf("%s[%d]: analytic %g numeric %g", p.Name, i, got, want)
			}
		}
	}
	// Input gradient too.
	for i := range x.V {
		const h = 1e-3
		orig := x.V[i]
		x.V[i] = orig + h
		lp := float64(lossOnly())
		x.V[i] = orig - h
		lm := float64(lossOnly())
		x.V[i] = orig
		want := (lp - lm) / (2 * h)
		if math.Abs(float64(x.D[i])-want) > 1e-2*math.Max(1, math.Abs(want)) {
			t.Fatalf("x[%d]: analytic %g numeric %g", i, x.D[i], want)
		}
	}
}

func TestMLPGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewMLP("m", []int{5, 7, 1}, rng)
	x := NewGrad(make([]float32, 5))
	for i := range x.V {
		x.V[i] = rng.Float32()*2 - 1
	}
	forward := func(tape *Tape) float32 {
		for i := range x.D {
			x.D[i] = 0
		}
		y := m.Apply(tape, x)
		if tape != nil {
			y.D[0] = 1
		}
		return y.V[0]
	}
	var tape Tape
	forward(&tape)
	tape.Backward()
	for _, p := range m.Params() {
		for i := 0; i < len(p.W); i += 3 { // sample every third weight
			want := numericGrad(p, i, func() float32 { return forward(nil) })
			got := float64(p.G[i])
			if math.Abs(got-want) > 2e-2*math.Max(1, math.Abs(want)) {
				t.Fatalf("%s[%d]: analytic %g numeric %g", p.Name, i, got, want)
			}
		}
	}
}

func TestEmbeddingGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	e := NewEmbedding("e", 4, 3, rng)
	var tape Tape
	y := e.Apply(&tape, 2)
	y.D[0], y.D[1], y.D[2] = 1, 2, 3
	tape.Backward()
	for i := 0; i < 3; i++ {
		if e.Table.G[2*3+i] != float32(i+1) {
			t.Fatalf("gradient row wrong: %v", e.Table.G)
		}
	}
	// Other rows untouched.
	for i := 0; i < 3; i++ {
		if e.Table.G[i] != 0 {
			t.Fatal("gradient leaked to other rows")
		}
	}
	// Out-of-range index snaps instead of panicking.
	if got := e.Apply(nil, 99); len(got.V) != 3 {
		t.Fatal("snap lookup failed")
	}
}

func TestConcatSplitsGradient(t *testing.T) {
	a := NewGrad([]float32{1, 2})
	b := NewGrad([]float32{3})
	var tape Tape
	y := Concat(&tape, a, b)
	if len(y.V) != 3 || y.V[2] != 3 {
		t.Fatalf("concat value %v", y.V)
	}
	y.D[0], y.D[1], y.D[2] = 10, 20, 30
	tape.Backward()
	if a.D[0] != 10 || a.D[1] != 20 || b.D[0] != 30 {
		t.Fatalf("split gradients a=%v b=%v", a.D, b.D)
	}
}

func TestReLU(t *testing.T) {
	x := NewGrad([]float32{-1, 0, 2})
	var tape Tape
	y := ReLU(&tape, x)
	if y.V[0] != 0 || y.V[1] != 0 || y.V[2] != 2 {
		t.Fatalf("relu %v", y.V)
	}
	y.D[0], y.D[1], y.D[2] = 1, 1, 1
	tape.Backward()
	if x.D[0] != 0 || x.D[1] != 0 || x.D[2] != 1 {
		t.Fatalf("relu grad %v", x.D)
	}
}

func TestAdamConvergesOnRegression(t *testing.T) {
	// Fit y = 2x1 - 3x2 + 0.5 with a linear layer.
	rng := rand.New(rand.NewSource(4))
	l := NewLinear("fit", 2, 1, rng)
	opt := NewAdam(0.05, l.Params()...)
	var lastLoss float32
	for step := 0; step < 500; step++ {
		x := NewGrad([]float32{rng.Float32()*2 - 1, rng.Float32()*2 - 1})
		target := 2*x.V[0] - 3*x.V[1] + 0.5
		var tape Tape
		y := l.Apply(&tape, x)
		lastLoss = MSELoss(y, target)
		tape.Backward()
		opt.Step()
	}
	if lastLoss > 0.01 {
		t.Fatalf("regression did not converge: loss %g", lastLoss)
	}
	if math.Abs(float64(l.W.W[0]-2)) > 0.2 || math.Abs(float64(l.W.W[1]+3)) > 0.2 {
		t.Fatalf("weights %v, want ~[2,-3]", l.W.W)
	}
}

func TestHingeRankLoss(t *testing.T) {
	// Correctly ordered with margin > 1: zero loss, zero gradient.
	slow := NewGrad([]float32{3})
	fast := NewGrad([]float32{1})
	if l := HingeRankLoss(slow, fast); l != 0 {
		t.Fatalf("loss %g, want 0", l)
	}
	if slow.D[0] != 0 || fast.D[0] != 0 {
		t.Fatal("gradient on satisfied pair")
	}
	// Misordered: positive loss, gradient pushes slow up and fast down.
	slow = NewGrad([]float32{0})
	fast = NewGrad([]float32{2})
	l := HingeRankLoss(slow, fast)
	if l != 3 {
		t.Fatalf("loss %g, want 3", l)
	}
	if slow.D[0] != -1 || fast.D[0] != 1 {
		t.Fatalf("gradients %g %g", slow.D[0], fast.D[0])
	}
}

func TestHingeRankLossTrainsOrdering(t *testing.T) {
	// A 1-layer model must learn to rank inputs by their first feature.
	rng := rand.New(rand.NewSource(5))
	m := NewMLP("rank", []int{2, 8, 1}, rng)
	opt := NewAdam(0.01, m.Params()...)
	sample := func() (*Grad, float32) {
		x := []float32{rng.Float32(), rng.Float32()}
		return NewGrad(x), x[0] // runtime = first feature
	}
	for step := 0; step < 2000; step++ {
		a, ya := sample()
		b, yb := sample()
		var tape Tape
		pa := m.Apply(&tape, a)
		pb := m.Apply(&tape, b)
		if ya > yb {
			HingeRankLoss(pa, pb)
		} else {
			HingeRankLoss(pb, pa)
		}
		tape.Backward()
		opt.Step()
	}
	correct := 0
	for trial := 0; trial < 200; trial++ {
		a, ya := sample()
		b, yb := sample()
		pa := m.Apply(nil, a)
		pb := m.Apply(nil, b)
		if (pa.V[0] > pb.V[0]) == (ya > yb) {
			correct++
		}
	}
	if correct < 180 {
		t.Fatalf("ranking accuracy %d/200", correct)
	}
}

func TestAdamZeroesGradAfterStep(t *testing.T) {
	p := NewParam("p", 2, 2)
	p.G[0] = 5
	opt := NewAdam(0.1, p)
	opt.Step()
	if p.G[0] != 0 {
		t.Fatal("gradient not cleared")
	}
	if p.W[0] == 0 {
		t.Fatal("weight not updated")
	}
	if opt.GradNorm() != 0 {
		t.Fatal("grad norm nonzero after step")
	}
}

func TestCheckShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	CheckShape("x", 3, 4)
}
