// Package waco is a Go reproduction of WACO — "Learning Workload-Aware
// Co-optimization of the Format and Schedule of a Sparse Tensor Program"
// (Won, Mendis, Emer, Amarasinghe; ASPLOS 2023).
//
// WACO auto-tunes sparse tensor programs: given a sparse matrix (or 3-D
// tensor), it jointly selects the storage format (a TACO-style coordinate
// hierarchy with Uncompressed/Compressed levels, splits, and level orders)
// and the schedule (loop order, parallelized index, worker count, dynamic
// chunk size) that minimize measured runtime. It does so with a learned cost
// model — a sparse convolutional feature extractor (WACONet) over the raw
// sparsity pattern plus a SuperSchedule program embedder — and an
// approximate nearest neighbor search (HNSW) over program embeddings.
//
// This package is the public facade; subsystems live in internal packages:
//
//	tensor     sparse/dense tensor substrate, Matrix Market I/O
//	generate   synthetic sparsity-pattern corpus (SuiteSparse substitute)
//	format     TACO-style format abstraction and assembly
//	schedule   SuperSchedule template, search space, encoding
//	kernel     schedule-directed kernel executor (SpMV/SpMM/SDDMM/MTTKRP)
//	nn         minimal neural network library (float32, Adam, ranking loss)
//	sparseconv submanifold/strided sparse convolution, WACONet
//	costmodel  feature extractors + program embedder + runtime predictor
//	hnsw       hierarchical navigable small world ANNS
//	search     ANNS schedule retrieval and black-box baselines
//	baselines  FixedCSR, MKL-like inspector-executor, BestFormat, ASpT
//	dataset    (matrix, SuperSchedule, runtime) collection pipeline
//	core       the end-to-end pipeline: Collect -> Train -> Index -> Tune
//
// Quick start:
//
//	cfg := waco.DefaultConfig(waco.SpMM)
//	tuner, _, err := waco.Build(waco.Corpus(waco.DefaultCorpusConfig()), cfg)
//	...
//	tuned, err := tuner.TuneTensor(myMatrix)
//	fmt.Println(tuned.Schedule, tuned.KernelSeconds)
package waco

import (
	"io"

	"waco/internal/baselines"
	"waco/internal/core"
	"waco/internal/dataset"
	"waco/internal/format"
	"waco/internal/generate"
	"waco/internal/kernel"
	"waco/internal/schedule"
	"waco/internal/tensor"
)

// Algorithm selects one of the four supported sparse kernels.
type Algorithm = schedule.Algorithm

// The four algorithms of the paper's evaluation.
const (
	SpMV   = schedule.SpMV
	SpMM   = schedule.SpMM
	SDDMM  = schedule.SDDMM
	MTTKRP = schedule.MTTKRP
)

// Re-exported pipeline types.
type (
	// Config parameterizes the end-to-end pipeline.
	Config = core.Config
	// Tuner is a trained WACO instance.
	Tuner = core.Tuner
	// Tuned is a tuning outcome with kernel/tuning/conversion costs.
	Tuned = baselines.Tuned
	// SuperSchedule is the joint format+schedule template point.
	SuperSchedule = schedule.SuperSchedule
	// Space is the SuperSchedule search space.
	Space = schedule.Space
	// Format is a TACO-style storage format.
	Format = format.Format
	// COO is a coordinate-form sparse tensor.
	COO = tensor.COO
	// Dense is a dense row-major matrix.
	Dense = tensor.Dense
	// Matrix is a named generated pattern.
	Matrix = generate.Matrix
	// CorpusConfig bounds a generated matrix population.
	CorpusConfig = generate.CorpusConfig
	// Dataset is a collection of measured tuples.
	Dataset = dataset.Dataset
	// MachineProfile models the execution machine.
	MachineProfile = kernel.MachineProfile
	// Workload bundles a sparse operand with dense operands.
	Workload = kernel.Workload
)

// DefaultConfig returns the reduced-scale pipeline configuration.
func DefaultConfig(alg Algorithm) Config { return core.DefaultConfig(alg) }

// Build collects a dataset on the corpus, trains the cost model, and builds
// the ANNS index.
func Build(trainMatrices []Matrix, cfg Config) (*Tuner, *Dataset, error) {
	return core.Build(trainMatrices, cfg)
}

// BuildFromDataset trains from pre-collected measurements.
func BuildFromDataset(ds *Dataset, cfg Config) (*Tuner, error) {
	return core.BuildFromDataset(ds, cfg)
}

// Corpus generates a deterministic synthetic matrix population.
func Corpus(cfg CorpusConfig) []Matrix { return generate.Corpus(cfg) }

// DefaultCorpusConfig is the reduced-scale population config.
func DefaultCorpusConfig() CorpusConfig { return generate.DefaultCorpusConfig() }

// ReadMatrixMarket parses a MatrixMarket coordinate stream.
func ReadMatrixMarket(r io.Reader) (*COO, error) { return tensor.ReadMatrixMarket(r) }

// WriteMatrixMarket serializes a matrix in MatrixMarket format.
func WriteMatrixMarket(w io.Writer, c *COO) error { return tensor.WriteMatrixMarket(w, c) }

// NewWorkload prepares operands for measuring schedules on a tensor.
func NewWorkload(alg Algorithm, coo *COO, denseN int) (*Workload, error) {
	return kernel.NewWorkload(alg, coo, denseN)
}

// DefaultSchedule returns the Fixed-CSR baseline schedule for the algorithm.
func DefaultSchedule(alg Algorithm, threads int) *SuperSchedule {
	return schedule.DefaultSchedule(alg, threads)
}

// DefaultProfile uses every available CPU.
func DefaultProfile() MachineProfile { return kernel.DefaultProfile() }
