// Command waco-train trains a WACO cost model from a dataset produced by
// waco-datagen and writes the model (architecture + weights) to a file
// consumable by waco-tune. With -artifact it additionally seals a tuner
// artifact (model + HNSW schedule index + configuration) that waco-serve
// and waco-tune can load without retraining or re-indexing.
//
// Usage:
//
//	waco-train -data spmm.dataset -scale default -out spmm.model
//	waco-train -data spmm.dataset -scale default -out spmm.model -artifact spmm.tuner
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"waco/internal/core"
	"waco/internal/costmodel"
	"waco/internal/dataset"
	"waco/internal/experiments"
	"waco/internal/kernel"
	"waco/internal/tensor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("waco-train: ")
	dataPath := flag.String("data", "waco.dataset", "input dataset file from waco-datagen")
	out := flag.String("out", "waco.model", "output model file")
	artifact := flag.String("artifact", "", "also seal a tuner artifact (model + schedule index) to this file")
	quantize := flag.Bool("quantize", false, "calibrate an int8 predictor head on the dataset matrices and seal it into the artifact (requires -artifact)")
	scaleName := flag.String("scale", "quick", "scale preset sizing the network: quick|default|paper")
	extractor := flag.String("extractor", "", "override feature extractor: waconet|minkowski|denseconv|human")
	epochs := flag.Int("epochs", 0, "override training epochs")
	lr := flag.Float64("lr", 0, "override learning rate")
	valFrac := flag.Float64("val", 0.2, "validation fraction")
	seed := flag.Int64("seed", 0, "override RNG seed")
	workers := flag.Int("workers", 0, "worker goroutines for training and indexing (0 = one per CPU; results are identical for any value)")
	flag.Parse()
	if *quantize && *artifact == "" {
		log.Fatal("-quantize requires -artifact (the int8 head is sealed into the artifact)")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	f, err := os.Open(*dataPath)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := dataset.Load(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("loaded %v dataset: %d matrices, %d samples", ds.Alg, len(ds.Entries), ds.NumSamples())

	s := experiments.ScaleByName(*scaleName)
	if *seed != 0 {
		s.Seed = *seed
	}
	if *extractor != "" {
		s.Extractor = costmodel.ExtractorKind(*extractor)
	}
	if *epochs > 0 {
		s.Epochs = *epochs
	}
	if *lr > 0 {
		s.LR = float32(*lr)
	}

	cfg := experiments.PipelineConfigFor(ds.Alg, s, kernel.DefaultProfile())
	cfg.Workers = *workers
	buildStart := time.Now()
	model, err := costmodel.New(cfg.Collect.Space, cfg.Model)
	if err != nil {
		log.Fatal(err)
	}
	train, val := ds.Split(*valFrac, cfg.Train.Seed)
	if len(train) == 0 {
		train = ds.Entries
	}
	tc := cfg.Train
	tc.Workers = *workers
	tc.Verbose = func(line string) { log.Print(line) }
	if _, err := costmodel.TrainContext(ctx, model, train, val, tc); err != nil {
		log.Fatal(err)
	}
	if len(val) > 0 {
		if acc, err := costmodel.PairAccuracy(model, val, 32, s.Seed); err == nil {
			log.Printf("validation pair-ranking accuracy: %.1f%%", 100*acc)
		}
	}

	w, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	saveErr := model.Save(w)
	if cerr := w.Close(); saveErr == nil {
		saveErr = cerr
	}
	if saveErr != nil {
		log.Fatal(saveErr)
	}
	log.Printf("wrote %s", *out)

	if *artifact != "" {
		// Workloads tuned against this artifact must use the dataset's dense
		// inner dimension, not the scale preset's.
		cfg.Collect.DenseN = ds.DenseN
		tuner, err := core.NewTunerContext(ctx, model, ds, cfg)
		if err != nil {
			log.Fatal(err)
		}
		// Record the full offline cost (training + indexing) so cached
		// startups can report their speedup against it.
		tuner.BuildSeconds = time.Since(buildStart).Seconds()
		if *quantize {
			samples := make([]*tensor.COO, 0, len(ds.Entries))
			for _, e := range ds.Entries {
				samples = append(samples, e.COO)
			}
			if err := tuner.Quantize(samples); err != nil {
				log.Fatal(err)
			}
			log.Printf("calibrated int8 predictor head on %d matrices", len(samples))
		}
		af, err := os.Create(*artifact)
		if err != nil {
			log.Fatal(err)
		}
		sealErr := core.SaveTuner(af, tuner)
		if cerr := af.Close(); sealErr == nil {
			sealErr = cerr
		}
		if sealErr != nil {
			log.Fatal(sealErr)
		}
		log.Printf("sealed tuner artifact %s (%d indexed schedules, built in %.2fs)",
			*artifact, len(tuner.Index.Schedules), tuner.BuildSeconds)
	}
}
