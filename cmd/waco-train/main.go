// Command waco-train trains a WACO cost model from a dataset produced by
// waco-datagen and writes the model (architecture + weights) to a file
// consumable by waco-tune.
//
// Usage:
//
//	waco-train -data spmm.dataset -scale default -out spmm.model
package main

import (
	"flag"
	"log"
	"os"

	"waco/internal/costmodel"
	"waco/internal/dataset"
	"waco/internal/experiments"
	"waco/internal/kernel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("waco-train: ")
	dataPath := flag.String("data", "waco.dataset", "input dataset file from waco-datagen")
	out := flag.String("out", "waco.model", "output model file")
	scaleName := flag.String("scale", "quick", "scale preset sizing the network: quick|default|paper")
	extractor := flag.String("extractor", "", "override feature extractor: waconet|minkowski|denseconv|human")
	epochs := flag.Int("epochs", 0, "override training epochs")
	lr := flag.Float64("lr", 0, "override learning rate")
	valFrac := flag.Float64("val", 0.2, "validation fraction")
	seed := flag.Int64("seed", 0, "override RNG seed")
	flag.Parse()

	f, err := os.Open(*dataPath)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := dataset.Load(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("loaded %v dataset: %d matrices, %d samples", ds.Alg, len(ds.Entries), ds.NumSamples())

	s := experiments.ScaleByName(*scaleName)
	if *seed != 0 {
		s.Seed = *seed
	}
	if *extractor != "" {
		s.Extractor = costmodel.ExtractorKind(*extractor)
	}
	if *epochs > 0 {
		s.Epochs = *epochs
	}
	if *lr > 0 {
		s.LR = float32(*lr)
	}

	cfg := experiments.PipelineConfigFor(ds.Alg, s, kernel.DefaultProfile())
	model, err := costmodel.New(cfg.Collect.Space, cfg.Model)
	if err != nil {
		log.Fatal(err)
	}
	train, val := ds.Split(*valFrac, cfg.Train.Seed)
	if len(train) == 0 {
		train = ds.Entries
	}
	tc := cfg.Train
	tc.Verbose = func(line string) { log.Print(line) }
	if _, err := costmodel.Train(model, train, val, tc); err != nil {
		log.Fatal(err)
	}
	if len(val) > 0 {
		if acc, err := costmodel.PairAccuracy(model, val, 32, s.Seed); err == nil {
			log.Printf("validation pair-ranking accuracy: %.1f%%", 100*acc)
		}
	}

	w, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer w.Close()
	if err := model.Save(w); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)
}
