// Command waco-vet runs WACO's project-specific static analyzers over the
// module: the correctness invariants the tuner's reproducibility and the
// serving path's cancellation guarantees rest on. See internal/wacovet for
// the rules and the //waco:nolint suppression convention.
//
// Usage:
//
//	waco-vet [-json] [-list] [-check name,...] [packages ...]
//
// With no package arguments it analyzes ./... from the current directory.
// -check restricts the run to a comma-separated subset of analyzers (CI runs
// the slow escape-analysis gate in its own job that way).
// Exit status: 0 clean, 1 findings, 2 load or usage failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"waco/internal/wacovet"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	list := flag.Bool("list", false, "list the analyzers and exit")
	check := flag.String("check", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	if *list {
		for _, a := range wacovet.DefaultAnalyzers("waco") {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	m, err := wacovet.Load(".", flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "waco-vet:", err)
		os.Exit(2)
	}
	analyzers := wacovet.DefaultAnalyzers(m.Path)
	if *check != "" {
		analyzers, err = filterAnalyzers(analyzers, *check)
		if err != nil {
			fmt.Fprintln(os.Stderr, "waco-vet:", err)
			os.Exit(2)
		}
	}
	findings := wacovet.RunAnalyzers(m, analyzers)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "waco-vet:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "waco-vet: %d finding(s) in %d package(s)\n", len(findings), len(m.Packages))
		}
		os.Exit(1)
	}
}

// filterAnalyzers keeps the analyzers named in the comma-separated spec,
// rejecting names that match nothing so a typo cannot silently skip a gate.
func filterAnalyzers(all []*wacovet.Analyzer, spec string) ([]*wacovet.Analyzer, error) {
	byName := map[string]*wacovet.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var picked []*wacovet.Analyzer
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (use -list to see them)", name)
		}
		picked = append(picked, a)
	}
	if len(picked) == 0 {
		return nil, fmt.Errorf("-check named no analyzers")
	}
	return picked, nil
}
