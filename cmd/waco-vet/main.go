// Command waco-vet runs WACO's project-specific static analyzers over the
// module: the correctness invariants the tuner's reproducibility and the
// serving path's cancellation guarantees rest on. See internal/wacovet for
// the rules and the //waco:nolint suppression convention.
//
// Usage:
//
//	waco-vet [-json] [-list] [packages ...]
//
// With no package arguments it analyzes ./... from the current directory.
// Exit status: 0 clean, 1 findings, 2 load or usage failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"waco/internal/wacovet"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range wacovet.DefaultAnalyzers("waco") {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	m, err := wacovet.Load(".", flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "waco-vet:", err)
		os.Exit(2)
	}
	findings := wacovet.RunAnalyzers(m, wacovet.DefaultAnalyzers(m.Path))

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "waco-vet:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "waco-vet: %d finding(s) in %d package(s)\n", len(findings), len(m.Packages))
		}
		os.Exit(1)
	}
}
