// Command waco-bench regenerates every table and figure of the paper's
// motivation and evaluation sections on this machine, rendering plain-text
// tables to stdout and optionally to a file (the source of EXPERIMENTS.md).
//
// Usage:
//
//	waco-bench -scale quick                  # seconds per experiment
//	waco-bench -scale default -out results.txt
//	waco-bench -only table1,fig15            # subset
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"waco/internal/experiments"
	"waco/internal/schedule"
)

type experiment struct {
	name string
	desc string
	run  func(experiments.Scale, io.Writer) error
}

func renderAll(w io.Writer, tables ...*experiments.Table) {
	for _, t := range tables {
		if t != nil {
			t.Render(w)
		}
	}
}

var catalog = []experiment{
	{"table1", "co-optimization impact (motivation)", func(s experiments.Scale, w io.Writer) error {
		tabs, err := experiments.Tables1And2(s)
		if err != nil {
			return err
		}
		renderAll(w, tabs[0])
		return nil
	}},
	{"table2", "pattern sensitivity (motivation)", func(s experiments.Scale, w io.Writer) error {
		tabs, err := experiments.Tables1And2(s)
		if err != nil {
			return err
		}
		renderAll(w, tabs[1])
		return nil
	}},
	{"fig13+tables456", "WACO vs all baselines, speedup tables and factor analysis", func(s experiments.Scale, w io.Writer) error {
		tabs45, results, err := experiments.Tables4And5(s)
		if err != nil {
			return err
		}
		renderAll(w, tabs45...)
		// Figure 13 curves from the SpMM comparison already computed.
		cmp := results[schedule.SpMM]
		for _, baseline := range cmp.Methods {
			if baseline == "WACO" {
				continue
			}
			sp := cmp.Speedups(baseline)
			t := &experiments.Table{
				Title:  fmt.Sprintf("Figure 13: WACO speedup over %s on SpMM (sorted)", baseline),
				Header: []string{"rank", "speedup"},
			}
			for i, v := range sp {
				t.AddRow(fmt.Sprint(i+1), fmt.Sprintf("%.2fx", v))
			}
			t.AddNote("geomean %.2fx over %d matrices", experiments.Geomean(sp), len(sp))
			t.Render(w)
		}
		experiments.Table6SpeedupFactors(results).Render(w)
		return nil
	}},
	{"fig14", "backend block-size heuristic", func(s experiments.Scale, w io.Writer) error {
		t, err := experiments.Fig14BlockSizeHeuristic(s)
		if err != nil {
			return err
		}
		t.Render(w)
		return nil
	}},
	{"fig15", "feature extractor comparison", func(s experiments.Scale, w io.Writer) error {
		t, err := experiments.Fig15FeatureExtractors(s)
		if err != nil {
			return err
		}
		t.Render(w)
		return nil
	}},
	{"fig16", "search strategies and time breakdown", func(s experiments.Scale, w io.Writer) error {
		a, err := experiments.Fig16aSearchStrategies(s)
		if err != nil {
			return err
		}
		b, err := experiments.Fig16bSearchBreakdown(s)
		if err != nil {
			return err
		}
		renderAll(w, a, b)
		return nil
	}},
	{"querypath", "forward-only vs tape-path query throughput", func(s experiments.Scale, w io.Writer) error {
		t, err := experiments.QueryPathThroughput(s)
		if err != nil {
			return err
		}
		t.Render(w)
		return nil
	}},
	{"partitioned", "composable formats: partitioned vs single-format SpMM", func(s experiments.Scale, w io.Writer) error {
		t, err := experiments.PartitionedComparison(s)
		if err != nil {
			return err
		}
		t.Render(w)
		return nil
	}},
	{"table7", "cross-hardware generalization", func(s experiments.Scale, w io.Writer) error {
		t, err := experiments.Table7CrossHardware(s)
		if err != nil {
			return err
		}
		t.Render(w)
		return nil
	}},
	{"fig17+table8", "tuning overhead and end-to-end scenarios", func(s experiments.Scale, w io.Writer) error {
		t17, results, err := experiments.Fig17TuningOverhead(s)
		if err != nil {
			return err
		}
		renderAll(w, t17, experiments.Table8EndToEnd(results))
		return nil
	}},
	{"transfer", "few-shot transfer: rank quality vs measurement budget on a new machine", func(s experiments.Scale, w io.Writer) error {
		t, _, err := experiments.TransferComparison(s)
		if err != nil {
			return err
		}
		t.Render(w)
		return nil
	}},
	{"ablations", "executor overhead, ranking-vs-MSE, ANNS recall, sampling strategy", func(s experiments.Scale, w io.Writer) error {
		a, err := experiments.AblationExecutorOverhead(s)
		if err != nil {
			return err
		}
		b, err := experiments.AblationRankingVsMSE(s)
		if err != nil {
			return err
		}
		c, err := experiments.AblationANNSRecall(s)
		if err != nil {
			return err
		}
		d, err := experiments.AblationConcordantSampling(s)
		if err != nil {
			return err
		}
		renderAll(w, a, b, c, d)
		return nil
	}},
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("waco-bench: ")
	scaleName := flag.String("scale", "quick", "scale preset: quick|default|paper")
	only := flag.String("only", "", "comma-separated experiment subset (default: all)")
	outPath := flag.String("out", "", "also write results to this file")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range catalog {
			fmt.Printf("%-16s %s\n", e.name, e.desc)
		}
		return
	}

	want := map[string]bool{}
	if *only != "" {
		for _, n := range strings.Split(*only, ",") {
			want[strings.TrimSpace(n)] = true
		}
	}

	var w io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	s := experiments.ScaleByName(*scaleName)
	fmt.Fprintf(w, "WACO reproduction experiments — scale=%s, %s\n\n", s.Name, time.Now().Format(time.RFC3339))
	for _, e := range catalog {
		if len(want) > 0 && !want[e.name] {
			continue
		}
		log.Printf("running %s (%s)...", e.name, e.desc)
		start := time.Now()
		if err := e.run(s, w); err != nil {
			log.Printf("%s FAILED: %v", e.name, err)
			continue
		}
		log.Printf("%s done in %s", e.name, time.Since(start).Round(time.Millisecond))
	}
}
