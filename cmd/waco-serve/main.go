// Command waco-serve runs the WACO auto-tuning service: it loads a sealed
// tuner artifact (written by waco-train -artifact or waco-tune -artifact)
// and answers tuning queries over HTTP until interrupted, draining in-flight
// searches on shutdown.
//
// Endpoints:
//
//	POST /v1/tune        {"matrix": {...}} or {"matrix_market": "..."} -> best SuperSchedule
//	                     with ?async=1: 202 + job id immediately, tune runs detached
//	POST /v1/predict     same matrix forms + "k"                       -> top-k predicted schedules
//	GET  /v1/jobs/{id}                                                 -> async job state/result
//	GET  /healthz                                                      -> liveness (also /v1/healthz)
//	GET  /readyz                                                       -> readiness (artifact loaded, not draining)
//	POST /admin/reload                                                 -> hot-swap the sealed artifact
//	GET  /v1/stats                                                     -> cache/dedup/search/job counters (JSON)
//	GET  /metrics                                                      -> Prometheus text exposition
//
// SIGHUP reloads the artifact file in place (same as POST /admin/reload with
// no body): the new tuner swaps in atomically, in-flight requests finish on
// the old one, and /v1/stats reports the bumped artifact version and stamp.
// On SIGINT/SIGTERM the daemon turns /readyz to 503 first — so a router
// stops sending work — then drains.
//
// With -debug-addr a second listener serves net/http/pprof (profiles stay
// off the public port). Each request is access-logged via log/slog with a
// request id, the matrix fingerprint, and the cached/deduped delivery path;
// -quiet disables the access log.
//
// Usage:
//
//	waco-serve -artifact spmm.tuner -addr :8080 -debug-addr localhost:6060
package main

import (
	"context"
	"flag"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"waco/internal/core"
	"waco/internal/obslog"
	"waco/internal/serve"
)

// speedup is the startup-speed headline: sealed-load time vs original build.
func speedup(build, load float64) float64 {
	if load <= 0 {
		return 0
	}
	return build / load
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("waco-serve: ")
	artifactPath := flag.String("artifact", "waco.tuner", "sealed tuner artifact file")
	addr := flag.String("addr", ":8080", "listen address")
	debugAddr := flag.String("debug-addr", "", "optional second listen address for net/http/pprof (empty = disabled)")
	cacheSize := flag.Int("cache", 1024, "fingerprint cache capacity (entries)")
	workers := flag.Int("workers", 2, "max concurrent tune/predict searches")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-request tuning deadline (0 = none)")
	drain := flag.Duration("drain", 30*time.Second, "shutdown drain deadline for in-flight searches")
	maxJobs := flag.Int("max-jobs", 256, "bound on resident async tune jobs (running + retained results)")
	jobTTL := flag.Duration("job-ttl", 10*time.Minute, "retention of finished async job results for polling")
	quiet := flag.Bool("quiet", false, "disable per-request structured access logging")
	quantized := flag.Bool("quantized", false, "serve predictor-head evaluations on the int8 quantized path (requires an artifact sealed with -quantize)")
	prefilterMargin := flag.Float64("prefilter-margin", 0, "asymptotic-cost pre-filter prune margin in log2 units (0 = disabled)")
	obslogPath := flag.String("obslog", "", "append-only measurement log file recording every completed tune for waco-retrain (empty = disabled)")
	obslogHost := flag.String("obslog-host", "", "host tag stamped on measurement records (default: os.Hostname)")
	obslogBuffer := flag.Int("obslog-buffer", 256, "measurement records buffered between the request path and the log writer; overflow drops (counted in /metrics)")
	flag.Parse()

	t0 := time.Now()
	tuner, err := core.LoadTunerFile(*artifactPath)
	if err != nil {
		log.Fatal(err)
	}
	loadSecs := time.Since(t0).Seconds()
	log.Printf("loaded %v tuner: %d indexed schedules in %.3fs (sealed build took %.3fs, %.0fx faster startup)",
		tuner.Cfg.Alg, len(tuner.Index.Schedules), loadSecs, tuner.BuildSeconds, speedup(tuner.BuildSeconds, loadSecs))

	var obsLog *obslog.Log
	if *obslogPath != "" {
		obsLog, err = obslog.Open(*obslogPath, obslog.Options{Host: *obslogHost, Buffer: *obslogBuffer})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("observation log %s: %d existing records", *obslogPath, obsLog.Existing())
	}

	var logger *slog.Logger
	if !*quiet {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	srv, err := serve.NewServer(tuner, serve.Options{
		CacheSize:       *cacheSize,
		MaxWorkers:      *workers,
		RequestTimeout:  *timeout,
		MaxJobs:         *maxJobs,
		JobTTL:          *jobTTL,
		ArtifactPath:    *artifactPath,
		Logger:          logger,
		Quantized:       *quantized,
		PrefilterMargin: *prefilterMargin,
		ObsLog:          obsLog,
	})
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errCh := make(chan error, 2)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("serving on %s (metrics at /metrics)", *addr)

	var debugSrv *http.Server
	if *debugAddr != "" {
		// pprof on its own mux and listener: profiling endpoints never ride
		// the public port, and the default-mux registration side effects of
		// importing net/http/pprof are avoided by registering explicitly.
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		debugSrv = &http.Server{Addr: *debugAddr, Handler: dmux}
		go func() { errCh <- debugSrv.ListenAndServe() }()
		log.Printf("pprof on %s/debug/pprof/", *debugAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
loop:
	for {
		select {
		case err := <-errCh:
			log.Fatal(err)
		case got := <-sig:
			if got == syscall.SIGHUP {
				// Hot reload in place; a bad artifact leaves the old one serving.
				info, err := srv.ReloadFromFile("")
				if err != nil {
					log.Printf("reload failed, keeping current artifact: %v", err)
					continue
				}
				log.Printf("reloaded artifact: version %d stamp %.16s", info.Version, info.Stamp)
				continue
			}
			log.Printf("received %v, draining", got)
			break loop
		}
	}

	// Readiness goes down first so routers stop sending new work, then the
	// listener and the request pool drain.
	srv.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if debugSrv != nil {
		if err := debugSrv.Shutdown(ctx); err != nil {
			log.Printf("debug shutdown: %v", err)
		}
	}
	if err := srv.Close(ctx); err != nil {
		log.Printf("drain: %v (some searches abandoned)", err)
	}
	if obsLog != nil {
		if err := obsLog.Close(); err != nil {
			log.Printf("observation log close: %v", err)
		}
	}
	st := srv.Snapshot()
	log.Printf("served %d tune + %d predict requests (%d searches, %d deduped, %d cache hits, %d async jobs)",
		st.TuneRequests, st.PredictRequests, st.Searches, st.DedupedSearches, st.CacheHits, st.JobsSubmitted)
	if obsLog != nil {
		log.Printf("observation log: %d records appended, %d dropped", obsLog.Appended(), obsLog.Dropped())
	}
}
