// Command waco-serve runs the WACO auto-tuning service: it loads a sealed
// tuner artifact (written by waco-train -artifact or waco-tune -artifact)
// and answers tuning queries over HTTP until interrupted, draining in-flight
// searches on shutdown.
//
// Endpoints:
//
//	POST /v1/tune     {"matrix": {...}} or {"matrix_market": "..."} -> best SuperSchedule
//	POST /v1/predict  same matrix forms + "k"                       -> top-k predicted schedules
//	GET  /v1/healthz                                                -> liveness
//	GET  /v1/stats                                                  -> cache/dedup/search counters
//
// Usage:
//
//	waco-serve -artifact spmm.tuner -addr :8080
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"waco/internal/core"
	"waco/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("waco-serve: ")
	artifactPath := flag.String("artifact", "waco.tuner", "sealed tuner artifact file")
	addr := flag.String("addr", ":8080", "listen address")
	cacheSize := flag.Int("cache", 1024, "fingerprint cache capacity (entries)")
	workers := flag.Int("workers", 2, "max concurrent tune/predict searches")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-request tuning deadline (0 = none)")
	drain := flag.Duration("drain", 30*time.Second, "shutdown drain deadline for in-flight searches")
	flag.Parse()

	f, err := os.Open(*artifactPath)
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	tuner, err := core.LoadTuner(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		log.Fatal(err)
	}
	loadSecs := time.Since(t0).Seconds()
	log.Printf("loaded %v tuner: %d indexed schedules in %.3fs (sealed build took %.3fs, %.0fx faster startup)",
		tuner.Cfg.Alg, len(tuner.Index.Schedules), loadSecs, tuner.BuildSeconds, speedup(tuner.BuildSeconds, loadSecs))

	srv, err := serve.NewServer(tuner, serve.Options{
		CacheSize:      *cacheSize,
		MaxWorkers:     *workers,
		RequestTimeout: *timeout,
	})
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("serving on %s", *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		log.Fatal(err)
	case got := <-sig:
		log.Printf("received %v, draining", got)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := srv.Close(ctx); err != nil {
		log.Printf("drain: %v (some searches abandoned)", err)
	}
	st := srv.Snapshot()
	log.Printf("served %d tune + %d predict requests (%d searches, %d deduped, %d cache hits)",
		st.TuneRequests, st.PredictRequests, st.Searches, st.DedupedSearches, st.CacheHits)
}

func speedup(build, load float64) float64 {
	if load <= 0 {
		return 0
	}
	return build / load
}
