// Command waco-datagen generates a WACO training dataset: it builds a
// synthetic sparsity-pattern corpus, samples SuperSchedules for each matrix,
// measures every (matrix, schedule) pair on this machine, and writes the
// (matrix, SuperSchedule, runtime) tuples to a gob file consumable by
// waco-train and waco-tune.
//
// Usage:
//
//	waco-datagen -alg spmm -scale default -out spmm.dataset
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"waco/internal/dataset"
	"waco/internal/experiments"
	"waco/internal/generate"
	"waco/internal/kernel"
	"waco/internal/schedule"
)

func algByName(name string) (schedule.Algorithm, error) {
	switch strings.ToLower(name) {
	case "spmv":
		return schedule.SpMV, nil
	case "spmm":
		return schedule.SpMM, nil
	case "sddmm":
		return schedule.SDDMM, nil
	case "mttkrp":
		return schedule.MTTKRP, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q (want spmv|spmm|sddmm|mttkrp)", name)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("waco-datagen: ")
	algName := flag.String("alg", "spmm", "algorithm: spmv|spmm|sddmm|mttkrp")
	scaleName := flag.String("scale", "quick", "scale preset: quick|default|paper")
	out := flag.String("out", "waco.dataset", "output dataset file")
	count := flag.Int("count", 0, "override number of training matrices")
	schedules := flag.Int("schedules", 0, "override schedules sampled per matrix")
	repeats := flag.Int("repeats", 0, "override repetitions per measurement")
	seed := flag.Int64("seed", 0, "override RNG seed")
	augment := flag.Int("augment", 0, "resized variants per matrix (the paper's augmentation)")
	workers := flag.Int("workers", 0, "matrices measured concurrently (0 = one per CPU; sampled schedules are identical for any value, but concurrent measurement adds timing noise — use 1 for the cleanest runtimes)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	alg, err := algByName(*algName)
	if err != nil {
		log.Fatal(err)
	}
	s := experiments.ScaleByName(*scaleName)
	if *count > 0 {
		s.TrainMatrices = *count
	}
	if *schedules > 0 {
		s.SchedulesPerMatrix = *schedules
	}
	if *repeats > 0 {
		s.Repeats = *repeats
	}
	if *seed != 0 {
		s.Seed = *seed
	}

	mats := experiments.CorporaFor(alg, s)
	if *augment > 0 && alg.SparseOrder() == 2 {
		mats = generate.Augment(mats, *augment, s.Seed+977, s.MinDim, s.MaxDim)
	}
	log.Printf("collecting %v dataset: %d matrices, %d schedules each, %d repeats",
		alg, len(mats), s.SchedulesPerMatrix, s.Repeats)
	ccfg := experiments.CollectConfigFor(alg, s, kernel.DefaultProfile())
	ccfg.Workers = *workers
	ds, err := dataset.CollectContext(ctx, mats, ccfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("collected %d samples over %d matrices", ds.NumSamples(), len(ds.Entries))

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := ds.Save(f); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)
}
