// Command waco-stats inspects a sparsity pattern: it prints the pattern
// statistics WACO's shallow baselines consume, the storage footprint of the
// classic named formats, and (with -measure) the measured kernel time of
// each format under a concordant schedule — a quick manual tour of the
// format space WACO searches automatically.
//
// Usage:
//
//	waco-stats -matrix m.mtx -alg spmm -measure
//	waco-stats -family banded -dim 2048 -nnz 100000
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"
	"text/tabwriter"

	"waco/internal/baselines"
	"waco/internal/format"
	"waco/internal/generate"
	"waco/internal/kernel"
	"waco/internal/schedule"
	"waco/internal/tensor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("waco-stats: ")
	matrixPath := flag.String("matrix", "", "MatrixMarket file (optional)")
	family := flag.String("family", "powerlaw", "synthetic generator family if no -matrix")
	dim := flag.Int("dim", 1024, "synthetic matrix dimension")
	nnz := flag.Int("nnz", 50000, "synthetic matrix nonzeros")
	seed := flag.Int64("seed", 1, "synthetic generator seed")
	algName := flag.String("alg", "spmm", "algorithm for -measure: spmv|spmm|sddmm")
	measure := flag.Bool("measure", false, "measure each candidate format's kernel time")
	denseN := flag.Int("densen", 32, "dense inner dimension for SpMM/SDDMM")
	flag.Parse()

	var coo *tensor.COO
	var err error
	if *matrixPath != "" {
		f, err2 := os.Open(*matrixPath)
		if err2 != nil {
			log.Fatal(err2)
		}
		coo, err = tensor.ReadMatrixMarket(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatal(err)
		}
	} else {
		cfg := generate.DefaultCorpusConfig()
		cfg.MinDim, cfg.MaxDim, cfg.MaxNNZ = *dim, *dim, *nnz
		coo = generate.FromFamily(rand.New(rand.NewSource(*seed)), *family, cfg)
	}

	st := tensor.ComputeStats(coo)
	fmt.Printf("pattern: %d x %d, %d nonzeros (density %.4g%%)\n",
		st.NumRows, st.NumCols, st.NNZ, 100*st.Density)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "  nnz per row\tmean %.2f, std %.2f, max %d, empty rows %d\n",
		st.RowNNZMean, st.RowNNZStd, st.RowNNZMax, st.EmptyRows)
	fmt.Fprintf(tw, "  diagonal\tavg bandwidth %.1f, near-diagonal fraction %.2f\n", st.AvgBandwidth, st.DiagFraction)
	fmt.Fprintf(tw, "  blocks\t2x2 fill %.2f, 8x8 fill %.2f\n", st.BlockFill2, st.BlockFill8)
	fmt.Fprintf(tw, "  symmetry\t%.2f\n", st.SymmetryScore)
	tw.Flush()

	var alg schedule.Algorithm
	switch strings.ToLower(*algName) {
	case "spmv":
		alg = schedule.SpMV
	case "sddmm":
		alg = schedule.SDDMM
	default:
		alg = schedule.SpMM
	}

	fmt.Printf("\ncandidate formats (%v):\n", alg)
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  format\tlayout\tstored entries\tbytes\tkernel")
	var wl *kernel.Workload
	if *measure {
		n := *denseN
		if alg == schedule.SpMV {
			n = 0
		}
		wl, err = kernel.NewWorkload(alg, coo, n)
		if err != nil {
			log.Fatal(err)
		}
	}
	for _, cand := range baselines.CandidateFormats(alg) {
		stored, err := format.Assemble(coo.Clone(), cand.F, format.AssembleOptions{})
		if err != nil {
			fmt.Fprintf(tw, "  %s\t%s\t-\t-\texcluded (%v)\n", cand.Name, cand.F.StringNamed(alg.ModeNames()), err)
			continue
		}
		kcell := "-"
		if *measure {
			ss := schedule.BestEffortSchedule(alg, cand.F, 2, 32)
			d, _, err := wl.MeasureSchedule(ss, kernel.DefaultProfile(), 0, 5)
			if err == nil {
				kcell = d.String()
			} else {
				kcell = "failed"
			}
		}
		fmt.Fprintf(tw, "  %s\t%s\t%d\t%d\t%s\n",
			cand.Name, cand.F.StringNamed(alg.ModeNames()), stored.NNZStored(), stored.Bytes(), kcell)
	}
	tw.Flush()
}
