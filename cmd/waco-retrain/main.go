// Command waco-retrain closes the online learning loop: it replays a
// serving-written measurement log (waco-serve -obslog) into training triples,
// fine-tunes the incumbent sealed artifact's cost model, and — only when the
// candidate passes the rank-quality promotion gates on a held-out log slice —
// rotates it into a versioned model directory and optionally POSTs
// /admin/reload so serving replicas pick it up without dropping a request.
//
// Modes:
//
//	waco-retrain -log obs.log -artifact spmm.tuner -modeldir models/
//	    full retrain: every weight adapts, the HNSW index is rebuilt
//	waco-retrain -log obs.log -artifact spmm.tuner -modeldir models/ -transfer -budget 64
//	    COGNATE-style few-shot transfer: the extractor and embedder freeze,
//	    only the predictor head adapts from the most recent 64 measurements,
//	    and the incumbent index is reused (frozen embedder = valid embeddings)
//
// Exit status: 0 when the candidate promoted (or passed a dry run), 2 when a
// gate rejected it (the incumbent keeps serving — an expected outcome, not a
// failure), 1 on operational errors.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	"waco/internal/retrain"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("waco-retrain: ")
	logPath := flag.String("log", "obs.log", "measurement log written by waco-serve -obslog")
	artifact := flag.String("artifact", "waco.tuner", "incumbent sealed artifact (fine-tune source and gate baseline)")
	modelDir := flag.String("modeldir", "", "versioned artifact directory to promote into (empty = dry run: gates evaluate, nothing rotates)")
	transfer := flag.Bool("transfer", false, "freeze extractor+embedder, adapt only the predictor head (few-shot transfer)")
	budget := flag.Int("budget", 0, "use only the most recent N log records (0 = all)")
	quantize := flag.Bool("quantize", false, "recalibrate an int8 head for the candidate and gate on quantized rank fidelity")
	minRecords := flag.Int("min-records", 16, "fewest intact log records required to attempt a retrain")
	holdout := flag.Float64("holdout", 0.34, "fraction of replayed entries held out for the promotion gate")
	gateSlack := flag.Float64("gate-slack", 0.02, "how far below the incumbent's holdout Spearman the candidate may score and still promote")
	epochs := flag.Int("epochs", 4, "fine-tune epochs")
	lr := flag.Float64("lr", 1e-3, "fine-tune learning rate")
	seed := flag.Int64("seed", 1, "fine-tune and holdout-split seed")
	workers := flag.Int("workers", 0, "trainer worker pool size (0 = one per CPU)")
	reloadURL := flag.String("reload-url", "", "serving base URL to POST /admin/reload after promotion (e.g. http://localhost:8080; empty = no reload)")
	jsonOut := flag.Bool("json", false, "print the run result as JSON on stdout")
	quiet := flag.Bool("quiet", false, "suppress progress lines")
	flag.Parse()

	cfg := retrain.Config{
		LogPath:      *logPath,
		ArtifactPath: *artifact,
		ModelDir:     *modelDir,
		Transfer:     *transfer,
		Budget:       *budget,
		Quantize:     *quantize,
		MinRecords:   *minRecords,
		HoldoutFrac:  *holdout,
		GateSlack:    *gateSlack,
		Epochs:       *epochs,
		LR:           float32(*lr),
		Seed:         *seed,
		Workers:      *workers,
	}
	if !*quiet {
		cfg.Verbose = func(line string) { log.Print(line) }
	}

	res, err := retrain.Run(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			log.Fatal(err)
		}
	}
	if !res.Promoted {
		log.Printf("%s", res.Reason)
		os.Exit(2)
	}
	log.Printf("%s", res.Reason)

	if *reloadURL != "" && res.PromotedPath != "" {
		if err := postReload(*reloadURL, res.PromotedPath, res.Stamp); err != nil {
			log.Fatal(err)
		}
		log.Printf("reload accepted by %s", *reloadURL)
	}
}

// postReload asks a serving replica to hot-swap to the promoted artifact and
// verifies the swapped stamp matches what was promoted.
func postReload(base, path, stamp string) error {
	body, err := json.Marshal(map[string]string{"artifact": path})
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: 60 * time.Second}
	resp, err := client.Post(base+"/admin/reload", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20)) //waco:nolint errdrop -- best-effort body for the error message; a short read only trims the quoted context
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("reload: %s returned %d: %s", base, resp.StatusCode, bytes.TrimSpace(raw))
	}
	var info struct {
		Stamp string `json:"stamp"`
	}
	if err := json.Unmarshal(raw, &info); err != nil {
		return fmt.Errorf("reload: parsing response: %w", err)
	}
	if stamp != "" && info.Stamp != stamp {
		return fmt.Errorf("reload: server now serves stamp %.16s, promoted %.16s", info.Stamp, stamp)
	}
	return nil
}
