// Command waco-router is the stateless front door of a sharded WACO
// serving fleet: it consistent-hash-routes tuning traffic to N waco-serve
// replicas on the sparsity fingerprint, so every matrix pattern keeps
// hitting the replica whose LRU cache already holds its answer.
//
// Endpoints (client-compatible with a single waco-serve):
//
//	POST /v1/tune        routed by the matrix fingerprint (async=1 included)
//	POST /v1/predict     routed by the matrix fingerprint
//	GET  /v1/jobs/{id}   routed by the fingerprint embedded in the job id
//	GET  /v1/stats       router + per-replica health counters
//	GET  /healthz        router liveness
//	GET  /readyz         at least one healthy replica
//	GET  /metrics        Prometheus text exposition
//
// Replicas are health-checked on /readyz (a draining replica stops getting
// new work), dead replicas are retried on the next ring preference with
// jittered exponential backoff, and per-replica in-flight load bounds hot
// spots (bounded-load consistent hashing).
//
// Usage:
//
//	waco-router -addr :9090 -replicas http://10.0.0.1:8080,http://10.0.0.2:8080
package main

import (
	"context"
	"flag"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"waco/internal/cluster"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("waco-router: ")
	addr := flag.String("addr", ":9090", "listen address")
	replicas := flag.String("replicas", "", "comma-separated waco-serve base URLs (required)")
	vnodes := flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per replica on the hash ring")
	loadFactor := flag.Float64("load-factor", 1.25, "bounded-load factor c (<=1 disables the bound)")
	retries := flag.Int("retries", 0, "max distinct replicas to attempt per request (0 = all)")
	healthEvery := flag.Duration("health-interval", 2*time.Second, "readiness probe period")
	probeTimeout := flag.Duration("probe-timeout", time.Second, "single readiness probe deadline")
	quiet := flag.Bool("quiet", false, "disable per-request structured logging")
	flag.Parse()

	urls := strings.Split(*replicas, ",")
	var cleaned []string
	for _, u := range urls {
		if u = strings.TrimSpace(u); u != "" {
			cleaned = append(cleaned, u)
		}
	}
	if len(cleaned) == 0 {
		log.Fatal("no replicas: pass -replicas http://host:port[,http://host:port...]")
	}

	var logger *slog.Logger
	if !*quiet {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	rt, err := cluster.NewRouter(cluster.Options{
		Replicas:       cleaned,
		VNodes:         *vnodes,
		LoadFactor:     *loadFactor,
		Retries:        *retries,
		HealthInterval: *healthEvery,
		ProbeTimeout:   *probeTimeout,
		Seed:           time.Now().UnixNano(),
		Logger:         logger,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	httpSrv := &http.Server{Addr: *addr, Handler: rt.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("routing to %d replicas on %s (metrics at /metrics)", len(cleaned), *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		log.Fatal(err)
	case got := <-sig:
		log.Printf("received %v, shutting down", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	st := rt.Stats()
	log.Printf("forwarded %d requests (%d retries, %d transport errors, %d healthy replicas at exit)",
		st.Forwarded, st.Retries, st.TransportErrors, st.HealthyReplicas)
}
