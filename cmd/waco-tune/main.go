// Command waco-tune co-optimizes the format and schedule of a sparse matrix:
// it loads a dataset (for the schedule index) and a trained cost model, runs
// the ANNS retrieval, measures the top-K candidates on this machine, and
// reports the winner against the Fixed CSR baseline.
//
// The input matrix comes from a MatrixMarket file (-matrix) or a synthetic
// generator family (-family, -dim, -nnz).
//
// Usage:
//
//	waco-tune -data spmm.dataset -model spmm.model -matrix web.mtx
//	waco-tune -data spmm.dataset -model spmm.model -family powerlaw -dim 4096 -nnz 200000
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"waco/internal/baselines"
	"waco/internal/core"
	"waco/internal/costmodel"
	"waco/internal/dataset"
	"waco/internal/experiments"
	"waco/internal/generate"
	"waco/internal/kernel"
	"waco/internal/tensor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("waco-tune: ")
	dataPath := flag.String("data", "waco.dataset", "dataset file (provides the schedule index)")
	modelPath := flag.String("model", "waco.model", "trained cost model file")
	matrixPath := flag.String("matrix", "", "MatrixMarket file to tune (optional)")
	family := flag.String("family", "powerlaw", "synthetic generator family if no -matrix")
	dim := flag.Int("dim", 1024, "synthetic matrix dimension")
	nnz := flag.Int("nnz", 50000, "synthetic matrix nonzeros")
	topK := flag.Int("topk", 10, "candidates measured on hardware")
	repeats := flag.Int("repeats", 5, "repetitions per measurement")
	seed := flag.Int64("seed", 1, "synthetic generator seed")
	flag.Parse()

	f, err := os.Open(*dataPath)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := dataset.Load(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	mf, err := os.Open(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	model, err := costmodel.LoadModel(mf)
	mf.Close()
	if err != nil {
		log.Fatal(err)
	}

	var coo *tensor.COO
	if *matrixPath != "" {
		r, err := os.Open(*matrixPath)
		if err != nil {
			log.Fatal(err)
		}
		coo, err = tensor.ReadMatrixMarket(r)
		r.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		cfg := generate.DefaultCorpusConfig()
		cfg.MinDim, cfg.MaxDim, cfg.MaxNNZ = *dim, *dim, *nnz
		coo = generate.FromFamily(rand.New(rand.NewSource(*seed)), *family, cfg)
		if ds.Alg.SparseOrder() == 3 {
			coo = generate.Tensor3D(rand.New(rand.NewSource(*seed+1)), coo, 32, 2)
		}
	}
	log.Printf("tuning %v on a %v-pattern tensor: dims=%v nnz=%d", ds.Alg, *family, coo.Dims, coo.NNZ())

	cfg := experiments.PipelineConfigFor(ds.Alg, experiments.ScaleByName("quick"), kernel.DefaultProfile())
	cfg.TopK = *topK
	cfg.SearchEf = 8 * *topK
	tuner, err := core.NewTuner(model, ds, cfg)
	if err != nil {
		log.Fatal(err)
	}
	wl, err := kernel.NewWorkload(ds.Alg, coo, ds.DenseN)
	if err != nil {
		log.Fatal(err)
	}
	bcfg := baselines.Config{Repeats: *repeats}
	tuned, err := tuner.Tune(wl, kernel.DefaultProfile(), bcfg)
	if err != nil {
		log.Fatal(err)
	}
	fixed, err := (baselines.FixedCSR{}).Tune(wl, kernel.DefaultProfile(), bcfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("best SuperSchedule: %s\n", tuned.Schedule)
	fmt.Printf("kernel time       : %.6fs (%s)\n", tuned.KernelSeconds, tuned.Info)
	fmt.Printf("tuning time       : %.6fs\n", tuned.TuningSeconds)
	fmt.Printf("format conversion : %.6fs\n", tuned.ConvertSeconds)
	fmt.Printf("Fixed CSR kernel  : %.6fs\n", fixed.KernelSeconds)
	fmt.Printf("speedup vs CSR    : %.2fx\n", fixed.KernelSeconds/tuned.KernelSeconds)
	if tuned.KernelSeconds < fixed.KernelSeconds {
		amortize := (tuned.TuningSeconds + tuned.ConvertSeconds) / (fixed.KernelSeconds - tuned.KernelSeconds)
		fmt.Printf("amortizes after   : %.0f kernel invocations\n", amortize)
	}
}
