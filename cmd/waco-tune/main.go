// Command waco-tune co-optimizes the format and schedule of a sparse matrix:
// it loads a trained tuner, runs the ANNS retrieval, measures the top-K
// candidates on this machine, and reports the winner against the Fixed CSR
// baseline.
//
// Startup takes one of two paths. With -artifact pointing at an existing
// sealed tuner (from waco-train -artifact or a previous waco-tune run), the
// tuner is loaded directly — no retraining, no re-embedding, no HNSW
// rebuild — and the speedup over the original build is printed. Otherwise
// the tuner is assembled from -data and -model as before, and sealed to
// -artifact (when given) so the next invocation takes the cached path.
//
// The input matrix comes from a MatrixMarket file (-matrix) or a synthetic
// generator family (-family, -dim, -nnz).
//
// Usage:
//
//	waco-tune -data spmm.dataset -model spmm.model -artifact spmm.tuner -matrix web.mtx
//	waco-tune -artifact spmm.tuner -family powerlaw -dim 4096 -nnz 200000
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"waco/internal/baselines"
	"waco/internal/core"
	"waco/internal/costmodel"
	"waco/internal/dataset"
	"waco/internal/experiments"
	"waco/internal/generate"
	"waco/internal/kernel"
	"waco/internal/schedule"
	"waco/internal/tensor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("waco-tune: ")
	dataPath := flag.String("data", "waco.dataset", "dataset file (provides the schedule index)")
	modelPath := flag.String("model", "waco.model", "trained cost model file")
	artifactPath := flag.String("artifact", "", "sealed tuner artifact: loaded if present, sealed after building otherwise")
	matrixPath := flag.String("matrix", "", "MatrixMarket file to tune (optional)")
	family := flag.String("family", "powerlaw", "synthetic generator family if no -matrix")
	dim := flag.Int("dim", 1024, "synthetic matrix dimension")
	nnz := flag.Int("nnz", 50000, "synthetic matrix nonzeros")
	topK := flag.Int("topk", 10, "candidates measured on hardware")
	repeats := flag.Int("repeats", 5, "repetitions per measurement")
	seed := flag.Int64("seed", 1, "synthetic generator seed")
	partitioned := flag.Bool("partitioned", false, "after tuning, measure the winner under each format decomposition preset")
	flag.Parse()

	tuner := loadOrBuildTuner(*artifactPath, *dataPath, *modelPath)
	tuner.Cfg.TopK = *topK
	tuner.Cfg.SearchEf = 8 * *topK
	alg := tuner.Cfg.Alg

	var coo *tensor.COO
	if *matrixPath != "" {
		r, err := os.Open(*matrixPath)
		if err != nil {
			log.Fatal(err)
		}
		coo, err = tensor.ReadMatrixMarket(r)
		if cerr := r.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatal(err)
		}
	} else {
		cfg := generate.DefaultCorpusConfig()
		cfg.MinDim, cfg.MaxDim, cfg.MaxNNZ = *dim, *dim, *nnz
		coo = generate.FromFamily(rand.New(rand.NewSource(*seed)), *family, cfg)
		if alg.SparseOrder() == 3 {
			coo = generate.Tensor3D(rand.New(rand.NewSource(*seed+1)), coo, 32, 2)
		}
	}
	log.Printf("tuning %v on a %v-pattern tensor: dims=%v nnz=%d", alg, *family, coo.Dims, coo.NNZ())

	wl, err := kernel.NewWorkload(alg, coo, tuner.Cfg.Collect.DenseN)
	if err != nil {
		log.Fatal(err)
	}
	bcfg := baselines.Config{Repeats: *repeats}
	tuned, err := tuner.Tune(wl, kernel.DefaultProfile(), bcfg)
	if err != nil {
		log.Fatal(err)
	}
	fixed, err := (baselines.FixedCSR{}).Tune(wl, kernel.DefaultProfile(), bcfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("best SuperSchedule: %s\n", tuned.Schedule)
	fmt.Printf("kernel time       : %.6fs (%s)\n", tuned.KernelSeconds, tuned.Info)
	fmt.Printf("tuning time       : %.6fs\n", tuned.TuningSeconds)
	fmt.Printf("format conversion : %.6fs\n", tuned.ConvertSeconds)
	fmt.Printf("Fixed CSR kernel  : %.6fs\n", fixed.KernelSeconds)
	fmt.Printf("speedup vs CSR    : %.2fx\n", fixed.KernelSeconds/tuned.KernelSeconds)
	if tuned.KernelSeconds < fixed.KernelSeconds {
		amortize := (tuned.TuningSeconds + tuned.ConvertSeconds) / (fixed.KernelSeconds - tuned.KernelSeconds)
		fmt.Printf("amortizes after   : %.0f kernel invocations\n", amortize)
	}

	if *partitioned {
		reportDecompositions(wl, tuned.Schedule, *repeats)
	}
}

// reportDecompositions re-measures the tuned schedule under every format
// decomposition preset, so the effect of composable storage can be isolated
// from the rest of the winning schedule. The search already covers the
// decomposition dimension; this just prints the neighborhood of the winner.
func reportDecompositions(wl *kernel.Workload, best *schedule.SuperSchedule, repeats int) {
	if len(schedule.DecompositionChoices(wl.Alg)) == 0 {
		log.Printf("-partitioned: %v kernels do not support format decomposition", wl.Alg)
		return
	}
	fmt.Printf("\ndecomposition sweep around the winner:\n")
	for _, dec := range schedule.Decompositions {
		ss := best.Clone()
		ss.Decomp = dec
		d, bytes, err := wl.MeasureSchedule(ss, kernel.DefaultProfile(), 0, repeats)
		marker := " "
		if dec == best.Decomp {
			marker = "*"
		}
		if err != nil {
			fmt.Printf("%s %-10s: %v\n", marker, dec, err)
			continue
		}
		fmt.Printf("%s %-10s: %.6fs  (%d stored bytes)\n", marker, dec, d.Seconds(), bytes)
	}
}

// loadOrBuildTuner prefers the sealed artifact; otherwise it assembles the
// tuner from dataset + model and, when an artifact path was given, seals the
// result there so subsequent startups are cached.
func loadOrBuildTuner(artifactPath, dataPath, modelPath string) *core.Tuner {
	if artifactPath != "" {
		if f, err := os.Open(artifactPath); err == nil {
			t0 := time.Now()
			tuner, err := core.LoadTuner(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				log.Fatalf("%s: %v", artifactPath, err)
			}
			loadSecs := time.Since(t0).Seconds()
			if loadSecs > 0 && tuner.BuildSeconds > 0 {
				log.Printf("cached startup: loaded %s in %.3fs vs %.3fs to rebuild (%.0fx faster)",
					artifactPath, loadSecs, tuner.BuildSeconds, tuner.BuildSeconds/loadSecs)
			} else {
				log.Printf("cached startup: loaded %s in %.3fs", artifactPath, loadSecs)
			}
			return tuner
		}
	}

	f, err := os.Open(dataPath)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := dataset.Load(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		log.Fatal(err)
	}
	mf, err := os.Open(modelPath)
	if err != nil {
		log.Fatal(err)
	}
	model, err := costmodel.LoadModel(mf)
	if cerr := mf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		log.Fatal(err)
	}
	cfg := experiments.PipelineConfigFor(ds.Alg, experiments.ScaleByName("quick"), kernel.DefaultProfile())
	cfg.Collect.DenseN = ds.DenseN
	tuner, err := core.NewTuner(model, ds, cfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("built tuner from %s + %s in %.3fs", dataPath, modelPath, tuner.BuildSeconds)

	if artifactPath != "" {
		af, err := os.Create(artifactPath)
		if err != nil {
			log.Fatal(err)
		}
		sealErr := core.SaveTuner(af, tuner)
		if cerr := af.Close(); sealErr == nil {
			sealErr = cerr
		}
		if sealErr != nil {
			log.Fatal(sealErr)
		}
		log.Printf("sealed %s for cached startup next run", artifactPath)
	}
	return tuner
}
